(** Recursive-descent parser for Clite.

    The grammar is the C subset FLASH-style protocol code uses: global
    variables, typedefs, struct/union/enum definitions, function prototypes
    and definitions; all C statements including [switch]/[goto]; the full
    expression grammar with standard precedence.  Typedef names are tracked
    so that declarations can be distinguished from expressions, as in any C
    parser. *)

exception Error of string * Loc.t

type t = {
  toks : (Token.t * Loc.t) array;
  mutable pos : int;
  typedefs : (string, unit) Hashtbl.t;
}

let create toks =
  { toks = Array.of_list toks; pos = 0; typedefs = Hashtbl.create 16 }

let cur p = fst p.toks.(p.pos)
let cur_loc p = snd p.toks.(p.pos)

let peek_at p n =
  let i = p.pos + n in
  if i < Array.length p.toks then fst p.toks.(i) else Token.EOF

let advance p = if p.pos < Array.length p.toks - 1 then p.pos <- p.pos + 1

let error p msg =
  raise
    (Error
       ( Printf.sprintf "%s (found %s)" msg (Token.to_string (cur p)),
         cur_loc p ))

let expect p tok =
  if cur p = tok then advance p
  else error p (Printf.sprintf "expected %s" (Token.to_string tok))

let expect_ident p =
  match cur p with
  | Token.IDENT s ->
    advance p;
    s
  | _ -> error p "expected identifier"

let accept p tok =
  if cur p = tok then begin
    advance p;
    true
  end
  else false

let is_typedef_name p name = Hashtbl.mem p.typedefs name

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

(* Does the current token begin a type? Used to distinguish declarations
   from expressions and casts from parenthesised expressions. *)
let starts_type p =
  match cur p with
  | Token.KW_VOID | Token.KW_CHAR | Token.KW_SHORT | Token.KW_INT
  | Token.KW_LONG | Token.KW_UNSIGNED | Token.KW_SIGNED | Token.KW_FLOAT
  | Token.KW_DOUBLE | Token.KW_STRUCT | Token.KW_UNION | Token.KW_ENUM
  | Token.KW_CONST | Token.KW_VOLATILE | Token.KW_STATIC | Token.KW_EXTERN
  | Token.KW_TYPEDEF | Token.KW_INLINE ->
    true
  | Token.IDENT s -> is_typedef_name p s
  | _ -> false

type specifiers = {
  sp_type : Ctype.t;
  sp_static : bool;
  sp_typedef : bool;
  sp_struct_def : (string * (string * Ctype.t) list * bool) option;
      (* tag, fields, is_union — present when the specifier *defines* a
         struct/union body that must be registered as a global *)
  sp_enum_def : (string * (string * int option) list) option;
}

(* Parse declaration specifiers: storage classes, qualifiers, and the base
   type.  [parse_fields] is a forward reference to the struct-body parser. *)
let rec parse_specifiers p : specifiers =
  let static = ref false in
  let typedef = ref false in
  let base : Ctype.t option ref = ref None in
  let unsigned = ref false in
  let signed = ref false in
  let long = ref false in
  let struct_def = ref None in
  let enum_def = ref None in
  let set t =
    match !base with
    | None -> base := Some t
    | Some _ -> error p "duplicate type specifier"
  in
  let rec loop () =
    (match cur p with
    | Token.KW_CONST | Token.KW_VOLATILE | Token.KW_INLINE | Token.KW_EXTERN
      ->
      advance p;
      loop ()
    | Token.KW_STATIC ->
      static := true;
      advance p;
      loop ()
    | Token.KW_TYPEDEF ->
      typedef := true;
      advance p;
      loop ()
    | Token.KW_UNSIGNED ->
      unsigned := true;
      advance p;
      loop ()
    | Token.KW_SIGNED ->
      signed := true;
      advance p;
      loop ()
    | Token.KW_LONG ->
      long := true;
      advance p;
      loop ()
    | Token.KW_VOID ->
      set Ctype.Void;
      advance p;
      loop ()
    | Token.KW_CHAR ->
      set Ctype.Char;
      advance p;
      loop ()
    | Token.KW_SHORT ->
      set Ctype.Short;
      advance p;
      loop ()
    | Token.KW_INT ->
      set Ctype.Int;
      advance p;
      loop ()
    | Token.KW_FLOAT ->
      set Ctype.Float;
      advance p;
      loop ()
    | Token.KW_DOUBLE ->
      set Ctype.Double;
      advance p;
      loop ()
    | Token.KW_STRUCT | Token.KW_UNION ->
      let is_union = cur p = Token.KW_UNION in
      advance p;
      let tag =
        match cur p with
        | Token.IDENT s ->
          advance p;
          s
        | _ -> "<anon>"
      in
      if cur p = Token.LBRACE then begin
        advance p;
        let fields = parse_fields p in
        expect p Token.RBRACE;
        struct_def := Some (tag, fields, is_union)
      end;
      set (if is_union then Ctype.Union tag else Ctype.Struct tag);
      loop ()
    | Token.KW_ENUM ->
      advance p;
      let tag =
        match cur p with
        | Token.IDENT s ->
          advance p;
          s
        | _ -> "<anon>"
      in
      if cur p = Token.LBRACE then begin
        advance p;
        let items = parse_enum_items p in
        expect p Token.RBRACE;
        enum_def := Some (tag, items)
      end;
      set (Ctype.Enum tag);
      loop ()
    | Token.IDENT s when !base = None && (not !unsigned) && (not !signed)
                         && (not !long) && is_typedef_name p s ->
      set (Ctype.Named s);
      advance p;
      loop ()
    | _ -> ());
    ()
  in
  loop ();
  let ty =
    match (!base, !unsigned, !long) with
    | Some Ctype.Char, true, _ -> Ctype.Uchar
    | Some Ctype.Short, true, _ -> Ctype.Ushort
    | Some Ctype.Int, true, false -> Ctype.Uint
    | Some Ctype.Int, true, true -> Ctype.Ulong
    | Some Ctype.Int, false, true -> Ctype.Long
    | Some t, _, _ -> t
    | None, true, false -> Ctype.Uint
    | None, true, true -> Ctype.Ulong
    | None, false, true -> Ctype.Long
    | None, false, false ->
      if !signed then Ctype.Int else error p "expected type specifier"
  in
  {
    sp_type = ty;
    sp_static = !static;
    sp_typedef = !typedef;
    sp_struct_def = !struct_def;
    sp_enum_def = !enum_def;
  }

and parse_fields p =
  let fields = ref [] in
  while cur p <> Token.RBRACE do
    let sp = parse_specifiers p in
    let rec decls () =
      let name, ty = parse_declarator p sp.sp_type in
      fields := (name, ty) :: !fields;
      if accept p Token.COMMA then decls ()
    in
    decls ();
    expect p Token.SEMI
  done;
  List.rev !fields

and parse_enum_items p =
  let items = ref [] in
  let rec loop () =
    match cur p with
    | Token.IDENT name ->
      advance p;
      let value =
        if accept p Token.ASSIGN then begin
          let neg = accept p Token.MINUS in
          match cur p with
          | Token.INT (v, _) ->
            advance p;
            Some (Int64.to_int v * if neg then -1 else 1)
          | _ -> error p "expected integer in enum item"
        end
        else None
      in
      items := (name, value) :: !items;
      if accept p Token.COMMA then loop ()
    | _ -> ()
  in
  loop ();
  List.rev !items

(* Parse a declarator: pointer stars, the name, then array/function
   suffixes.  Returns the declared name and its full type. *)
and parse_declarator p base : string * Ctype.t =
  let ty = ref base in
  while accept p Token.STAR do
    (* qualifiers after * are allowed and ignored *)
    while accept p Token.KW_CONST || accept p Token.KW_VOLATILE do
      ()
    done;
    ty := Ctype.Ptr !ty
  done;
  let name = expect_ident p in
  let rec suffixes t =
    if cur p = Token.LBRACKET then begin
      advance p;
      let len =
        match cur p with
        | Token.INT (v, _) ->
          advance p;
          Some (Int64.to_int v)
        | Token.IDENT _ ->
          (* symbolic array bound: treated as unknown length *)
          advance p;
          None
        | _ -> None
      in
      expect p Token.RBRACKET;
      Ctype.Array (suffixes t, len)
    end
    else t
  in
  (name, suffixes !ty)

(* An abstract type, as in casts and sizeof: specifiers plus pointer
   stars and array suffixes with no name. *)
and parse_abstract_type p : Ctype.t =
  let sp = parse_specifiers p in
  let ty = ref sp.sp_type in
  while accept p Token.STAR do
    ty := Ctype.Ptr !ty
  done;
  !ty

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

and parse_expr p = parse_comma p

and parse_comma p =
  let e = parse_assign p in
  if cur p = Token.COMMA then begin
    let loc = cur_loc p in
    advance p;
    let rest = parse_comma p in
    Ast.mk_expr ~loc (Ast.Comma (e, rest))
  end
  else e

and parse_assign p =
  let lhs = parse_cond p in
  let mk_op op =
    let loc = cur_loc p in
    advance p;
    let rhs = parse_assign p in
    Ast.mk_expr ~loc (Ast.Op_assign (op, lhs, rhs))
  in
  match cur p with
  | Token.ASSIGN ->
    let loc = cur_loc p in
    advance p;
    let rhs = parse_assign p in
    Ast.mk_expr ~loc (Ast.Assign (lhs, rhs))
  | Token.PLUSEQ -> mk_op Ast.Add
  | Token.MINUSEQ -> mk_op Ast.Sub
  | Token.STAREQ -> mk_op Ast.Mul
  | Token.SLASHEQ -> mk_op Ast.Div
  | Token.PERCENTEQ -> mk_op Ast.Mod
  | Token.AMPEQ -> mk_op Ast.Band
  | Token.PIPEEQ -> mk_op Ast.Bor
  | Token.CARETEQ -> mk_op Ast.Bxor
  | Token.LSHIFTEQ -> mk_op Ast.Shl
  | Token.RSHIFTEQ -> mk_op Ast.Shr
  | _ -> lhs

and parse_cond p =
  let c = parse_binary p 0 in
  if cur p = Token.QUESTION then begin
    let loc = cur_loc p in
    advance p;
    let t = parse_assign p in
    expect p Token.COLON;
    let f = parse_cond p in
    Ast.mk_expr ~loc (Ast.Cond (c, t, f))
  end
  else c

(* Binary operators by increasing precedence level. *)
and binop_of_token = function
  | Token.PIPEPIPE -> Some (Ast.Lor, 1)
  | Token.AMPAMP -> Some (Ast.Land, 2)
  | Token.PIPE -> Some (Ast.Bor, 3)
  | Token.CARET -> Some (Ast.Bxor, 4)
  | Token.AMP -> Some (Ast.Band, 5)
  | Token.EQEQ -> Some (Ast.Eq, 6)
  | Token.BANGEQ -> Some (Ast.Ne, 6)
  | Token.LT -> Some (Ast.Lt, 7)
  | Token.GT -> Some (Ast.Gt, 7)
  | Token.LE -> Some (Ast.Le, 7)
  | Token.GE -> Some (Ast.Ge, 7)
  | Token.LSHIFT -> Some (Ast.Shl, 8)
  | Token.RSHIFT -> Some (Ast.Shr, 8)
  | Token.PLUS -> Some (Ast.Add, 9)
  | Token.MINUS -> Some (Ast.Sub, 9)
  | Token.STAR -> Some (Ast.Mul, 10)
  | Token.SLASH -> Some (Ast.Div, 10)
  | Token.PERCENT -> Some (Ast.Mod, 10)
  | _ -> None

and parse_binary p min_prec =
  let lhs = ref (parse_unary p) in
  let continue = ref true in
  while !continue do
    match binop_of_token (cur p) with
    | Some (op, prec) when prec >= min_prec ->
      let loc = cur_loc p in
      advance p;
      let rhs = parse_binary p (prec + 1) in
      lhs := Ast.mk_expr ~loc (Ast.Binop (op, !lhs, rhs))
    | _ -> continue := false
  done;
  !lhs

and parse_unary p =
  let loc = cur_loc p in
  match cur p with
  | Token.PLUS ->
    advance p;
    parse_unary p
  | Token.MINUS ->
    advance p;
    Ast.mk_expr ~loc (Ast.Unop (Ast.Neg, parse_unary p))
  | Token.BANG ->
    advance p;
    Ast.mk_expr ~loc (Ast.Unop (Ast.Not, parse_unary p))
  | Token.TILDE ->
    advance p;
    Ast.mk_expr ~loc (Ast.Unop (Ast.Bnot, parse_unary p))
  | Token.STAR ->
    advance p;
    Ast.mk_expr ~loc (Ast.Unop (Ast.Deref, parse_unary p))
  | Token.AMP ->
    advance p;
    Ast.mk_expr ~loc (Ast.Unop (Ast.Addrof, parse_unary p))
  | Token.PLUSPLUS ->
    advance p;
    Ast.mk_expr ~loc (Ast.Unop (Ast.Preinc, parse_unary p))
  | Token.MINUSMINUS ->
    advance p;
    Ast.mk_expr ~loc (Ast.Unop (Ast.Predec, parse_unary p))
  | Token.KW_SIZEOF ->
    advance p;
    if cur p = Token.LPAREN && starts_type_at p 1 then begin
      expect p Token.LPAREN;
      let ty = parse_abstract_type p in
      expect p Token.RPAREN;
      Ast.mk_expr ~loc (Ast.Sizeof_type ty)
    end
    else Ast.mk_expr ~loc (Ast.Sizeof_expr (parse_unary p))
  | Token.LPAREN when starts_type_at p 1 ->
    (* cast *)
    advance p;
    let ty = parse_abstract_type p in
    expect p Token.RPAREN;
    Ast.mk_expr ~loc (Ast.Cast (ty, parse_unary p))
  | _ -> parse_postfix p

and starts_type_at p n =
  match peek_at p n with
  | Token.KW_VOID | Token.KW_CHAR | Token.KW_SHORT | Token.KW_INT
  | Token.KW_LONG | Token.KW_UNSIGNED | Token.KW_SIGNED | Token.KW_FLOAT
  | Token.KW_DOUBLE | Token.KW_STRUCT | Token.KW_UNION | Token.KW_ENUM
  | Token.KW_CONST | Token.KW_VOLATILE ->
    true
  | Token.IDENT s -> is_typedef_name p s
  | _ -> false

and parse_postfix p =
  let e = ref (parse_primary p) in
  let continue = ref true in
  while !continue do
    let loc = cur_loc p in
    match cur p with
    | Token.LPAREN ->
      advance p;
      let args = ref [] in
      if cur p <> Token.RPAREN then begin
        args := [ parse_assign p ];
        while accept p Token.COMMA do
          args := parse_assign p :: !args
        done
      end;
      expect p Token.RPAREN;
      e := Ast.mk_expr ~loc:!e.Ast.eloc (Ast.Call (!e, List.rev !args))
    | Token.LBRACKET ->
      advance p;
      let idx = parse_expr p in
      expect p Token.RBRACKET;
      e := Ast.mk_expr ~loc (Ast.Index (!e, idx))
    | Token.DOT ->
      advance p;
      let f = expect_ident p in
      e := Ast.mk_expr ~loc (Ast.Field (!e, f))
    | Token.ARROW ->
      advance p;
      let f = expect_ident p in
      e := Ast.mk_expr ~loc (Ast.Arrow (!e, f))
    | Token.PLUSPLUS ->
      advance p;
      e := Ast.mk_expr ~loc (Ast.Unop (Ast.Postinc, !e))
    | Token.MINUSMINUS ->
      advance p;
      e := Ast.mk_expr ~loc (Ast.Unop (Ast.Postdec, !e))
    | _ -> continue := false
  done;
  !e

and parse_primary p =
  let loc = cur_loc p in
  match cur p with
  | Token.INT (v, s) ->
    advance p;
    Ast.mk_expr ~loc (Ast.Int_lit (v, s))
  | Token.FLOAT (v, s) ->
    advance p;
    Ast.mk_expr ~loc (Ast.Float_lit (v, s))
  | Token.STRING s ->
    advance p;
    (* adjacent string literals concatenate, as in C *)
    let buf = Buffer.create (String.length s) in
    Buffer.add_string buf s;
    let rec more () =
      match cur p with
      | Token.STRING s2 ->
        advance p;
        Buffer.add_string buf s2;
        more ()
      | _ -> ()
    in
    more ();
    Ast.mk_expr ~loc (Ast.Str_lit (Buffer.contents buf))
  | Token.CHAR c ->
    advance p;
    Ast.mk_expr ~loc (Ast.Char_lit c)
  | Token.IDENT s ->
    advance p;
    Ast.mk_expr ~loc (Ast.Ident s)
  | Token.LPAREN ->
    advance p;
    let e = parse_expr p in
    expect p Token.RPAREN;
    e
  | _ -> error p "expected expression"

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

and parse_stmt p : Ast.stmt =
  let loc = cur_loc p in
  match cur p with
  | Token.LBRACE ->
    advance p;
    let body = ref [] in
    while cur p <> Token.RBRACE do
      body := parse_stmt p :: !body
    done;
    expect p Token.RBRACE;
    Ast.mk_stmt ~loc (Ast.Sblock (List.rev !body))
  | Token.SEMI ->
    advance p;
    Ast.mk_stmt ~loc Ast.Snull
  | Token.KW_IF ->
    advance p;
    expect p Token.LPAREN;
    let cond = parse_expr p in
    expect p Token.RPAREN;
    let then_s = parse_stmt p in
    let else_s = if accept p Token.KW_ELSE then Some (parse_stmt p) else None in
    Ast.mk_stmt ~loc (Ast.Sif (cond, then_s, else_s))
  | Token.KW_WHILE ->
    advance p;
    expect p Token.LPAREN;
    let cond = parse_expr p in
    expect p Token.RPAREN;
    Ast.mk_stmt ~loc (Ast.Swhile (cond, parse_stmt p))
  | Token.KW_DO ->
    advance p;
    let body = parse_stmt p in
    expect p Token.KW_WHILE;
    expect p Token.LPAREN;
    let cond = parse_expr p in
    expect p Token.RPAREN;
    expect p Token.SEMI;
    Ast.mk_stmt ~loc (Ast.Sdo (body, cond))
  | Token.KW_FOR ->
    advance p;
    expect p Token.LPAREN;
    let init =
      if cur p = Token.SEMI then None
      else if starts_type p then begin
        let d = parse_local_decl_single p in
        Some (Ast.Fi_decl d)
      end
      else Some (Ast.Fi_expr (parse_expr p))
    in
    (match init with Some (Ast.Fi_decl _) -> () | _ -> expect p Token.SEMI);
    let cond = if cur p = Token.SEMI then None else Some (parse_expr p) in
    expect p Token.SEMI;
    let step = if cur p = Token.RPAREN then None else Some (parse_expr p) in
    expect p Token.RPAREN;
    Ast.mk_stmt ~loc (Ast.Sfor (init, cond, step, parse_stmt p))
  | Token.KW_SWITCH ->
    advance p;
    expect p Token.LPAREN;
    let scrutinee = parse_expr p in
    expect p Token.RPAREN;
    Ast.mk_stmt ~loc (Ast.Sswitch (scrutinee, parse_stmt p))
  | Token.KW_CASE ->
    advance p;
    let e = parse_cond p in
    expect p Token.COLON;
    Ast.mk_stmt ~loc (Ast.Scase e)
  | Token.KW_DEFAULT ->
    advance p;
    expect p Token.COLON;
    Ast.mk_stmt ~loc Ast.Sdefault
  | Token.KW_RETURN ->
    advance p;
    let e = if cur p = Token.SEMI then None else Some (parse_expr p) in
    expect p Token.SEMI;
    Ast.mk_stmt ~loc (Ast.Sreturn e)
  | Token.KW_BREAK ->
    advance p;
    expect p Token.SEMI;
    Ast.mk_stmt ~loc Ast.Sbreak
  | Token.KW_CONTINUE ->
    advance p;
    expect p Token.SEMI;
    Ast.mk_stmt ~loc Ast.Scontinue
  | Token.KW_GOTO ->
    advance p;
    let label = expect_ident p in
    expect p Token.SEMI;
    Ast.mk_stmt ~loc (Ast.Sgoto label)
  | Token.IDENT name
    when peek_at p 1 = Token.COLON && peek_at p 2 <> Token.COLON
         && not (is_typedef_name p name) ->
    advance p;
    advance p;
    (* absorb an immediately-following null statement: the printer emits
       labels as "name:;" so that a label may legally end a block *)
    ignore (accept p Token.SEMI);
    Ast.mk_stmt ~loc (Ast.Slabel name)
  | _ when starts_type p ->
    let decls = parse_local_decls p in
    (match decls with
    | [ d ] -> Ast.mk_stmt ~loc (Ast.Sdecl d)
    | ds ->
      Ast.mk_stmt ~loc
        (Ast.Sblock (List.map (fun d -> Ast.mk_stmt ~loc (Ast.Sdecl d)) ds)))
  | _ ->
    let e = parse_expr p in
    expect p Token.SEMI;
    Ast.mk_stmt ~loc (Ast.Sexpr e)

(* A single declaration with exactly one declarator, consuming the ';'
   (used in for-init). *)
and parse_local_decl_single p : Ast.var_decl =
  let loc = cur_loc p in
  let sp = parse_specifiers p in
  let name, ty = parse_declarator p sp.sp_type in
  let init = if accept p Token.ASSIGN then Some (parse_assign p) else None in
  expect p Token.SEMI;
  { Ast.v_name = name; v_type = ty; v_init = init; v_loc = loc;
    v_static = sp.sp_static }

(* A local declaration possibly declaring several comma-separated names. *)
and parse_local_decls p : Ast.var_decl list =
  let loc = cur_loc p in
  let sp = parse_specifiers p in
  let decls = ref [] in
  let rec one () =
    let name, ty = parse_declarator p sp.sp_type in
    let init = if accept p Token.ASSIGN then Some (parse_assign p) else None in
    decls :=
      { Ast.v_name = name; v_type = ty; v_init = init; v_loc = loc;
        v_static = sp.sp_static }
      :: !decls;
    if accept p Token.COMMA then one ()
  in
  one ();
  expect p Token.SEMI;
  List.rev !decls

(* ------------------------------------------------------------------ *)
(* Globals                                                             *)
(* ------------------------------------------------------------------ *)

let parse_params p : (string * Ctype.t) list =
  expect p Token.LPAREN;
  if accept p Token.RPAREN then []
  else if cur p = Token.KW_VOID && peek_at p 1 = Token.RPAREN then begin
    advance p;
    advance p;
    []
  end
  else begin
    let params = ref [] in
    let rec one () =
      let sp = parse_specifiers p in
      (* abstract declarators are allowed in prototypes: consume pointer
         stars, then an optional name *)
      let base = ref sp.sp_type in
      while accept p Token.STAR do
        while accept p Token.KW_CONST || accept p Token.KW_VOLATILE do
          ()
        done;
        base := Ctype.Ptr !base
      done;
      let name, ty =
        match cur p with
        | Token.RPAREN | Token.COMMA ->
          (* unnamed parameter (prototype style) *)
          ("", !base)
        | Token.IDENT name ->
          advance p;
          let rec suffixes t =
            if accept p Token.LBRACKET then begin
              let len =
                match cur p with
                | Token.INT (v, _) ->
                  advance p;
                  Some (Int64.to_int v)
                | Token.IDENT _ ->
                  advance p;
                  None
                | _ -> None
              in
              expect p Token.RBRACKET;
              Ctype.Array (suffixes t, len)
            end
            else t
          in
          (name, suffixes !base)
        | _ -> ("", !base)
      in
      params := (name, ty) :: !params;
      if accept p Token.COMMA then
        if cur p = Token.ELLIPSIS then advance p else one ()
    in
    one ();
    expect p Token.RPAREN;
    List.rev !params
  end

let parse_global p : Ast.global list =
  let loc = cur_loc p in
  let sp = parse_specifiers p in
  let tag_globals =
    (match sp.sp_struct_def with
    | Some (tag, fields, false) -> [ Ast.Gstruct (tag, fields, loc) ]
    | Some (tag, fields, true) -> [ Ast.Gunion (tag, fields, loc) ]
    | None -> [])
    @
    match sp.sp_enum_def with
    | Some (tag, items) -> [ Ast.Genum (tag, items, loc) ]
    | None -> []
  in
  (* bare "struct S { ... };" or "enum E { ... };" *)
  if cur p = Token.SEMI && tag_globals <> [] then begin
    advance p;
    tag_globals
  end
  else if sp.sp_typedef then begin
    let name, ty = parse_declarator p sp.sp_type in
    expect p Token.SEMI;
    Hashtbl.replace p.typedefs name ();
    tag_globals @ [ Ast.Gtypedef (name, ty, loc) ]
  end
  else begin
    let name, ty = parse_declarator p sp.sp_type in
    if cur p = Token.LPAREN then begin
      (* function prototype or definition *)
      let params = parse_params p in
      if accept p Token.SEMI then
        tag_globals
        @ [ Ast.Gfunc_decl (name, ty, List.map snd params, loc) ]
      else begin
        let end_loc = ref loc in
        expect p Token.LBRACE;
        let body = ref [] in
        while cur p <> Token.RBRACE do
          body := parse_stmt p :: !body
        done;
        end_loc := cur_loc p;
        expect p Token.RBRACE;
        tag_globals
        @ [
            Ast.Gfunc
              {
                Ast.f_name = name;
                f_ret = ty;
                f_params = params;
                f_body = List.rev !body;
                f_loc = loc;
                f_static = sp.sp_static;
                f_end_loc = !end_loc;
              };
          ]
      end
    end
    else begin
      (* global variable(s) *)
      let mk name ty init =
        {
          Ast.v_name = name;
          v_type = ty;
          v_init = init;
          v_loc = loc;
          v_static = sp.sp_static;
        }
      in
      let init =
        if accept p Token.ASSIGN then Some (parse_assign p) else None
      in
      let vars = ref [ mk name ty init ] in
      while accept p Token.COMMA do
        let name, ty = parse_declarator p sp.sp_type in
        let init =
          if accept p Token.ASSIGN then Some (parse_assign p) else None
        in
        vars := mk name ty init :: !vars
      done;
      expect p Token.SEMI;
      tag_globals @ List.rev_map (fun v -> Ast.Gvar v) !vars
    end
  end

(* Lexing of whole translation units gets its own span; the many tiny
   [parse_expr_string] calls made when compiling checker patterns do not,
   as they would flood the trace buffer. *)
let lex_spanned ~file src =
  Mcobs.with_span "cfront.lex"
    ~args:
      [ ("file", file); ("bytes", string_of_int (String.length src)) ]
    (fun () -> Lexer.tokens ~file src)

(** Parse a complete translation unit from source text. *)
let parse_string ?(file = "<string>") src : Ast.tunit =
  Mcobs.with_span "cfront.parse" ~args:[ ("file", file) ] (fun () ->
      let toks = lex_spanned ~file src in
      let p = create toks in
      let globals = ref [] in
      while cur p <> Token.EOF do
        globals := List.rev_append (parse_global p) !globals
      done;
      { Ast.tu_file = file; tu_globals = List.rev !globals })

(** Parse a translation unit, reusing typedef names already declared (for
    multi-file programs that share headers). *)
let parse_string_with_typedefs ?(file = "<string>") ~typedefs src : Ast.tunit
    =
  Mcobs.with_span "cfront.parse" ~args:[ ("file", file) ] (fun () ->
      let toks = lex_spanned ~file src in
      let p = create toks in
      List.iter (fun name -> Hashtbl.replace p.typedefs name ()) typedefs;
      let globals = ref [] in
      while cur p <> Token.EOF do
        globals := List.rev_append (parse_global p) !globals
      done;
      { Ast.tu_file = file; tu_globals = List.rev !globals })

(* ------------------------------------------------------------------ *)
(* Panic-mode recovery                                                 *)
(* ------------------------------------------------------------------ *)

(* One bad construct must not abort a whole-corpus run (XCheck's
   micro-grammar lesson: bug finders stay useful by skipping what they
   cannot parse).  On [Error] the recovering driver records a [parse]
   diagnostic and resynchronises: it skips forward to a ';' or '}' at
   the error's own brace depth — which closes the enclosing function
   body when the error was inside one — or to a token that can begin a
   top-level declaration.  Every syntactically-intact global that
   follows is still parsed, so every intact function is still checked. *)

let max_parse_diags = 100

let parse_diag msg loc =
  Diag.make ~checker:"parse" ~loc ~func:"<toplevel>" msg

(* Skip to a resynchronisation point.  Depth is relative to the error
   position: a '}' seen at relative depth 0 is assumed to close the
   broken enclosing construct and is consumed. *)
let resync p =
  let depth = ref 0 in
  let continue = ref true in
  while !continue && cur p <> Token.EOF do
    match cur p with
    | Token.LBRACE ->
      incr depth;
      advance p
    | Token.RBRACE ->
      if !depth = 0 then begin
        advance p;
        continue := false
      end
      else begin
        decr depth;
        advance p
      end
    | Token.SEMI when !depth = 0 ->
      advance p;
      continue := false
    | _ when !depth = 0 && starts_type p -> continue := false
    | _ -> advance p
  done

let parse_tokens_recovering ~file ~typedefs toks : Ast.tunit * Diag.t list =
  let p = create toks in
  List.iter (fun name -> Hashtbl.replace p.typedefs name ()) typedefs;
  let globals = ref [] in
  let diags = ref [] in
  let n_diags = ref 0 in
  while cur p <> Token.EOF do
    let start = p.pos in
    match parse_global p with
    | gs -> globals := List.rev_append gs !globals
    | exception Error (msg, loc) ->
      incr n_diags;
      if !n_diags <= max_parse_diags then
        diags := parse_diag msg loc :: !diags;
      (* progress is guaranteed: at least one token is consumed before
         each resynchronisation attempt *)
      if p.pos = start then advance p;
      resync p
  done;
  ({ Ast.tu_file = file; tu_globals = List.rev !globals }, List.rev !diags)

(** Parse a translation unit, recovering from both lexical and syntax
    errors: malformed regions are skipped and reported as [lex]/[parse]
    diagnostics while every intact global is kept.  Never raises.
    [typedefs] seeds typedef names already declared by earlier units. *)
let parse_string_recovering ?(file = "<string>") ?(typedefs = []) src :
    Ast.tunit * Diag.t list =
  Mcobs.with_span "cfront.parse" ~args:[ ("file", file) ] (fun () ->
      let toks, lex_diags =
        Mcobs.with_span "cfront.lex"
          ~args:
            [ ("file", file); ("bytes", string_of_int (String.length src)) ]
          (fun () -> Lexer.tokens_recovering ~file src)
      in
      let tu, parse_diags = parse_tokens_recovering ~file ~typedefs toks in
      (tu, lex_diags @ parse_diags))

(** Parse a single expression (handy in tests and example checkers). *)
let parse_expr_string ?(file = "<string>") src : Ast.expr =
  let toks = Lexer.tokens ~file src in
  let p = create toks in
  let e = parse_expr p in
  if cur p <> Token.EOF then error p "trailing tokens after expression";
  e

(** Parse a statement (or a brace-enclosed block). *)
let parse_stmt_string ?(file = "<string>") src : Ast.stmt =
  let toks = Lexer.tokens ~file src in
  let p = create toks in
  let s = parse_stmt p in
  if cur p <> Token.EOF then error p "trailing tokens after statement";
  s
