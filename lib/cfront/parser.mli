(** Recursive-descent parser for Clite.

    Covers the C subset FLASH-style protocol code uses: global variables,
    typedefs, struct/union/enum definitions, prototypes and function
    definitions; all C statements including [switch] and [goto]; the full
    expression grammar with standard precedence.  Typedef names are
    tracked so declarations can be distinguished from expressions. *)

exception Error of string * Loc.t

val parse_string : ?file:string -> string -> Ast.tunit
(** @raise Error with the offending location on malformed input *)

val parse_string_with_typedefs :
  ?file:string -> typedefs:string list -> string -> Ast.tunit
(** parse with typedef names already in scope (multi-file programs that
    share headers) *)

val parse_string_recovering :
  ?file:string -> ?typedefs:string list -> string -> Ast.tunit * Diag.t list
(** total variant with panic-mode recovery: on a lexical or syntax error
    the malformed region is skipped — resynchronising at [;] / [}] /
    top-level declaration boundaries — and recorded as a [lex]/[parse]
    diagnostic, so every syntactically-intact global is still returned.
    Never raises. *)

val parse_expr_string : ?file:string -> string -> Ast.expr
(** a single expression — used by {!Pattern} and in tests *)

val parse_stmt_string : ?file:string -> string -> Ast.stmt
