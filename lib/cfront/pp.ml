(** Pretty-printer for Clite.

    Emits compilable C text.  The corpus generator uses this to write the
    synthetic protocol sources to disk, and the test suite uses it for
    parse/print round-trip properties.  Parenthesisation is conservative:
    every non-atomic sub-expression in an operator position is wrapped, so
    the printed form always re-parses to a structurally equal AST. *)

let unop_prefix = function
  | Ast.Neg -> "-"
  | Ast.Not -> "!"
  | Ast.Bnot -> "~"
  | Ast.Preinc -> "++"
  | Ast.Predec -> "--"
  | Ast.Deref -> "*"
  | Ast.Addrof -> "&"
  | Ast.Postinc | Ast.Postdec -> assert false

let binop_str = function
  | Ast.Add -> "+"
  | Ast.Sub -> "-"
  | Ast.Mul -> "*"
  | Ast.Div -> "/"
  | Ast.Mod -> "%"
  | Ast.Shl -> "<<"
  | Ast.Shr -> ">>"
  | Ast.Lt -> "<"
  | Ast.Gt -> ">"
  | Ast.Le -> "<="
  | Ast.Ge -> ">="
  | Ast.Eq -> "=="
  | Ast.Ne -> "!="
  | Ast.Band -> "&"
  | Ast.Bxor -> "^"
  | Ast.Bor -> "|"
  | Ast.Land -> "&&"
  | Ast.Lor -> "||"

let is_atom e =
  match e.Ast.edesc with
  | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Str_lit _ | Ast.Char_lit _
  | Ast.Ident _ | Ast.Call _ | Ast.Field _ | Ast.Arrow _ | Ast.Index _ ->
    true
  | _ -> false

(* Types are printed in two parts so that declarators come out right:
   [decl_type ppf ty name] prints e.g. "int *x[4]". *)
let rec base_type ppf (ty : Ctype.t) =
  match ty with
  | Ctype.Ptr t -> base_type ppf t
  | Ctype.Array (t, _) -> base_type ppf t
  | t -> Ctype.pp ppf t

let rec decl_suffix ppf (ty : Ctype.t) =
  match ty with
  | Ctype.Array (t, Some n) ->
    Format.fprintf ppf "[%d]" n;
    decl_suffix ppf t
  | Ctype.Array (t, None) ->
    Format.fprintf ppf "[]";
    decl_suffix ppf t
  | _ -> ()

let rec stars ppf (ty : Ctype.t) =
  match ty with
  | Ctype.Ptr t ->
    stars ppf t;
    Format.pp_print_string ppf "*"
  | _ -> ()

(* Clite declarators are simple — stars, then the name, then array
   suffixes — matching what the parser accepts: [Array (Ptr t, n)] prints
   as "t *x[n]". *)
let rec strip_arrays = function
  | Ctype.Array (t, _) -> strip_arrays t
  | t -> t

let decl_type ppf ty name =
  Format.fprintf ppf "%a %a%s%a" base_type ty stars (strip_arrays ty) name
    decl_suffix ty

let rec pp_expr ppf e =
  let atom ppf e =
    if is_atom e then pp_expr ppf e else Format.fprintf ppf "(%a)" pp_expr e
  in
  match e.Ast.edesc with
  | Ast.Int_lit (_, s) -> Format.pp_print_string ppf s
  | Ast.Float_lit (_, s) -> Format.pp_print_string ppf s
  | Ast.Str_lit s ->
    (* C escapes, restricted to the forms the Clite lexer understands
       (backslash n t r 0, backslash-backslash, escaped quotes): OCaml's
       %S would emit decimal escapes that re-lex as a digit followed by
       literal digits *)
    Format.pp_print_char ppf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Format.pp_print_string ppf "\\\""
        | '\\' -> Format.pp_print_string ppf "\\\\"
        | '\n' -> Format.pp_print_string ppf "\\n"
        | '\t' -> Format.pp_print_string ppf "\\t"
        | '\r' -> Format.pp_print_string ppf "\\r"
        | '\000' -> Format.pp_print_string ppf "\\0"
        | c -> Format.pp_print_char ppf c)
      s;
    Format.pp_print_char ppf '"'
  | Ast.Char_lit '\n' -> Format.pp_print_string ppf "'\\n'"
  | Ast.Char_lit '\t' -> Format.pp_print_string ppf "'\\t'"
  | Ast.Char_lit '\r' -> Format.pp_print_string ppf "'\\r'"
  | Ast.Char_lit '\000' -> Format.pp_print_string ppf "'\\0'"
  | Ast.Char_lit '\'' -> Format.pp_print_string ppf "'\\''"
  | Ast.Char_lit '\\' -> Format.pp_print_string ppf "'\\\\'"
  | Ast.Char_lit c -> Format.fprintf ppf "'%c'" c
  | Ast.Ident s -> Format.pp_print_string ppf s
  | Ast.Call (f, args) ->
    Format.fprintf ppf "%a(%a)" atom f
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         pp_expr)
      args
  | Ast.Unop (Ast.Postinc, a) -> Format.fprintf ppf "%a++" atom a
  | Ast.Unop (Ast.Postdec, a) -> Format.fprintf ppf "%a--" atom a
  | Ast.Unop (op, a) -> Format.fprintf ppf "%s%a" (unop_prefix op) atom a
  | Ast.Binop (op, a, b) ->
    Format.fprintf ppf "%a %s %a" atom a (binop_str op) atom b
  | Ast.Assign (l, r) -> Format.fprintf ppf "%a = %a" atom l assign_rhs r
  | Ast.Op_assign (op, l, r) ->
    Format.fprintf ppf "%a %s= %a" atom l (binop_str op) assign_rhs r
  | Ast.Cond (c, t, f) ->
    Format.fprintf ppf "%a ? %a : %a" atom c atom t atom f
  | Ast.Cast (ty, a) -> Format.fprintf ppf "(%a)%a" Ctype.pp ty atom a
  | Ast.Field (a, f) -> Format.fprintf ppf "%a.%s" atom a f
  | Ast.Arrow (a, f) -> Format.fprintf ppf "%a->%s" atom a f
  | Ast.Index (a, i) -> Format.fprintf ppf "%a[%a]" atom a pp_expr i
  | Ast.Comma (a, b) -> Format.fprintf ppf "%a, %a" pp_expr a pp_expr b
  | Ast.Sizeof_expr a -> Format.fprintf ppf "sizeof(%a)" pp_expr a
  | Ast.Sizeof_type t -> Format.fprintf ppf "sizeof(%a)" Ctype.pp t

(* assignments right-associate; avoid wrapping chained assigns in parens *)
and assign_rhs ppf e =
  match e.Ast.edesc with
  | Ast.Assign _ | Ast.Op_assign _ -> pp_expr ppf e
  | _ -> if is_atom e then pp_expr ppf e else Format.fprintf ppf "(%a)" pp_expr e

let pp_var_decl ppf (d : Ast.var_decl) =
  if d.v_static then Format.pp_print_string ppf "static ";
  decl_type ppf d.v_type d.v_name;
  match d.v_init with
  | Some e -> Format.fprintf ppf " = %a" pp_expr e
  | None -> ()

let rec pp_stmt ?(indent = 0) ppf s =
  let pad = String.make indent ' ' in
  let sub = indent + 2 in
  match s.Ast.sdesc with
  | Ast.Sexpr e -> Format.fprintf ppf "%s%a;" pad pp_expr e
  | Ast.Sdecl d -> Format.fprintf ppf "%s%a;" pad pp_var_decl d
  | Ast.Sblock body ->
    Format.fprintf ppf "%s{" pad;
    List.iter (fun s -> Format.fprintf ppf "@\n%a" (pp_stmt ~indent:sub) s)
      body;
    Format.fprintf ppf "@\n%s}" pad
  | Ast.Sif (c, t, f) -> (
    Format.fprintf ppf "%sif (%a)@\n%a" pad pp_expr c (pp_stmt ~indent:sub)
      (as_block t);
    match f with
    | Some e ->
      Format.fprintf ppf "@\n%selse@\n%a" pad (pp_stmt ~indent:sub)
        (as_block e)
    | None -> ())
  | Ast.Swhile (c, body) ->
    Format.fprintf ppf "%swhile (%a)@\n%a" pad pp_expr c (pp_stmt ~indent:sub)
      (as_block body)
  | Ast.Sdo (body, c) ->
    Format.fprintf ppf "%sdo@\n%a" pad (pp_stmt ~indent:sub) (as_block body);
    Format.fprintf ppf "@\n%swhile (%a);" pad pp_expr c
  | Ast.Sfor (init, cond, step, body) ->
    let pp_init ppf = function
      | Some (Ast.Fi_expr e) -> pp_expr ppf e
      | Some (Ast.Fi_decl d) -> pp_var_decl ppf d
      | None -> ()
    in
    let pp_opt ppf = function Some e -> pp_expr ppf e | None -> () in
    Format.fprintf ppf "%sfor (%a; %a; %a)@\n%a" pad pp_init init pp_opt cond
      pp_opt step (pp_stmt ~indent:sub) (as_block body)
  | Ast.Sswitch (e, body) ->
    Format.fprintf ppf "%sswitch (%a)@\n%a" pad pp_expr e
      (pp_stmt ~indent:sub) (as_block body)
  | Ast.Scase e -> Format.fprintf ppf "%scase %a:" pad pp_expr e
  | Ast.Sdefault -> Format.fprintf ppf "%sdefault:" pad
  | Ast.Sreturn (Some e) -> Format.fprintf ppf "%sreturn %a;" pad pp_expr e
  | Ast.Sreturn None -> Format.fprintf ppf "%sreturn;" pad
  | Ast.Sbreak -> Format.fprintf ppf "%sbreak;" pad
  | Ast.Scontinue -> Format.fprintf ppf "%scontinue;" pad
  | Ast.Sgoto l -> Format.fprintf ppf "%sgoto %s;" pad l
  | Ast.Slabel l -> Format.fprintf ppf "%s%s:;" pad l
  | Ast.Snull -> Format.fprintf ppf "%s;" pad

(* Wrap non-block statements in braces so dangling-else never changes
   meaning on round trips. *)
and as_block s =
  match s.Ast.sdesc with
  | Ast.Sblock _ -> s
  | _ -> Ast.mk_stmt ~loc:s.Ast.sloc (Ast.Sblock [ s ])

let pp_func ppf (f : Ast.func) =
  if f.f_static then Format.pp_print_string ppf "static ";
  let pp_param ppf (name, ty) =
    if name = "" then Ctype.pp ppf ty else decl_type ppf ty name
  in
  Format.fprintf ppf "%a %a%s(%a)@\n{" base_type f.f_ret stars f.f_ret
    f.f_name
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       pp_param)
    f.f_params;
  List.iter
    (fun s -> Format.fprintf ppf "@\n%a" (pp_stmt ~indent:2) s)
    f.f_body;
  Format.fprintf ppf "@\n}"

let pp_global ppf = function
  | Ast.Gfunc f -> pp_func ppf f
  | Ast.Gvar d -> Format.fprintf ppf "%a;" pp_var_decl d
  | Ast.Gtypedef (name, ty, _) ->
    Format.fprintf ppf "typedef %a %a%s%a;" base_type ty stars
      (strip_arrays ty) name decl_suffix ty
  | (Ast.Gstruct (tag, fields, _) | Ast.Gunion (tag, fields, _)) as g ->
    let kw = match g with Ast.Gunion _ -> "union" | _ -> "struct" in
    Format.fprintf ppf "%s %s {" kw tag;
    List.iter
      (fun (name, ty) ->
        Format.fprintf ppf "@\n  ";
        decl_type ppf ty name;
        Format.pp_print_string ppf ";")
      fields;
    Format.fprintf ppf "@\n};"
  | Ast.Genum (tag, items, _) ->
    Format.fprintf ppf "enum %s {" tag;
    List.iteri
      (fun i (name, value) ->
        if i > 0 then Format.pp_print_string ppf ",";
        Format.fprintf ppf "@\n  %s" name;
        match value with
        | Some v -> Format.fprintf ppf " = %d" v
        | None -> ())
      items;
    Format.fprintf ppf "@\n};"
  | Ast.Gfunc_decl (name, ret, params, _) ->
    Format.fprintf ppf "%a %s(%a);" base_type ret name
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         Ctype.pp)
      params

let pp_tunit ppf (tu : Ast.tunit) =
  List.iteri
    (fun i g ->
      if i > 0 then Format.fprintf ppf "@\n@\n";
      pp_global ppf g)
    tu.Ast.tu_globals;
  Format.fprintf ppf "@\n"

let expr_to_string e = Format.asprintf "%a" pp_expr e
let stmt_to_string s = Format.asprintf "%a" (pp_stmt ~indent:0) s
let tunit_to_string tu = Format.asprintf "%a" pp_tunit tu
