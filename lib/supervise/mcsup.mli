(** Mcsup — a supervised pool of pre-spawned worker processes.

    The served tier's fault barrier ({!Engine.describe_fault}) contains
    exceptions, but a checker that chews memory until the OOM killer
    wakes up, spins past every fuel probe, or blows the C stack takes
    the whole daemon down with it.  Mcsup moves that blast radius into
    child processes: the pool pre-spawns workers (re-executing the
    current binary with an environment gate — OCaml 5 forbids [fork]
    once domains exist), talks to each over a socketpair the child sees
    as fd 0, and enforces hard OS limits (RLIMIT_AS / RLIMIT_CPU, set
    by the worker at birth) plus a per-request wall deadline enforced
    here.  A worker that dies or blows the deadline is killed with
    escalation (TERM, grace, KILL), its failure classified from the
    trigger and [waitpid] status, and the request retried once on a
    fresh worker before the caller sees an error — a crashing unit
    costs one request one retry, never the service.

    The pool keeps one hot spare beyond its nominal size: when a
    worker is lost (or consumed by a burst), the spare is promoted
    instantly and a replacement spawns in the background, so respawn
    latency is off the request path.

    Mcsup is protocol-agnostic: a {!codec} tells it how to read one
    frame, write one frame, and classify a frame as more/final/garbage.
    The serve tier instantiates it with [Proto] framing in
    [Serve.Worker]. *)

(** {1 Worker-side helpers} *)

val is_worker : key:string -> bool
(** did the parent mark this process as a worker via environment
    variable [key]?  Hosting binaries call this (through their
    protocol module's [exit_if_worker]) before anything else. *)

val set_mem_limit_mb : int -> bool
(** cap this process's address space (RLIMIT_AS, soft = hard); false
    when the kernel refused — callers treat the limit as advisory
    because the supervisor's wall deadline still backstops *)

val set_cpu_limit_s : int -> bool
(** cap this process's CPU seconds (RLIMIT_CPU, hard = soft + 2s:
    SIGXCPU then SIGKILL) *)

(** {1 Failure classification} *)

type failure =
  | F_deadline  (** request exceeded the supervisor's wall deadline *)
  | F_signal of int  (** worker killed by this signal (e.g. SIGSEGV) *)
  | F_exit of int  (** worker exited with this nonzero status *)
  | F_channel of string  (** protocol breakdown: EOF mid-response,
                             garbage frame, write failure *)
  | F_spawn of string  (** could not get a live worker at all *)

val failure_class : failure -> string
(** stable label for metrics: [deadline] / [signal] / [exit] /
    [channel] / [spawn] *)

val describe_failure : failure -> string
(** one-line human description, used in the degraded [R_error] reason *)

(** {1 The pool} *)

type frame_class = More | Final | Garbage

type codec = {
  cd_read : Unix.file_descr -> (string, string) result;
      (** read one frame payload; [Error] on EOF/truncation.  May raise
          [Unix.Unix_error (EAGAIN | EWOULDBLOCK, _, _)] when the
          supervisor's receive timeout fires — Mcsup maps that to
          {!F_deadline}. *)
  cd_write : Unix.file_descr -> string -> unit;
      (** write one frame payload; raises [Unix.Unix_error] on failure *)
  cd_class : string -> frame_class;
      (** [Final] ends the response, [More] keeps reading, [Garbage]
          kills the worker ({!F_channel}) *)
  cd_split :
    (Bytes.t -> int -> int -> [ `Frame of string * int | `Need | `Bad of string ])
    option;
      (** optional incremental splitter over a byte window:
          [`Frame (payload, consumed)], [`Need] for a bare prefix,
          [`Bad] for framing garbage.  When present, dispatch drains
          reply bursts with bulk reads instead of paying two syscalls
          per frame — the difference between per-diagnostic and
          per-burst wakeups on diag-heavy responses.  [None] falls back
          to [cd_read] per frame. *)
}

type config = {
  sp_size : int;  (** nominal worker count (a hot spare rides on top) *)
  sp_env_key : string;  (** environment variable that gates worker mode *)
  sp_init : string;  (** first frame sent to each fresh worker (its
                         configuration); the worker must answer with one
                         ready frame *)
  sp_codec : codec;
  sp_wall_ms : float option;  (** per-request wall deadline (None = none) *)
  sp_grace_ms : float;  (** TERM → KILL escalation grace *)
  sp_spawn_timeout_ms : float;  (** give up on a worker that never
                                    answers its init frame *)
  sp_name : string;  (** metrics/log prefix, e.g. ["mcheckd"] *)
}

val default_config : codec -> config
(** size 2, env key ["MCSUP_WORKER"], empty init, 30s wall deadline,
    500ms grace, 10s spawn timeout *)

type t

val create : config -> (t, string) result
(** spawn [sp_size] workers plus the hot spare, waiting for each to
    answer its init frame; [Error] if any fails to come up (already
    spawned workers are torn down) *)

val dispatch : t -> string -> (string list, failure) result
(** run one request: block until a worker is idle, send the request
    frame, collect response frames until the codec says [Final], under
    the wall deadline.  On worker failure the worker is killed with
    escalation, replaced, and the request retried once on a fresh
    worker; only a second failure surfaces as [Error].  The returned
    frames are complete or the call is an [Error] — callers never see a
    partial response. *)

val retire_all : ?init:string -> t -> unit
(** graceful rolling restart: wait for in-flight requests, close every
    worker's channel (EOF lets it publish its cache and exit 0), reap,
    and respawn the full complement — with a new init frame when
    [init] is given (config reload) *)

val close : t -> unit
(** retire every worker (EOF, grace, escalation) without respawning;
    idempotent.  Blocks briefly for in-flight requests, then kills. *)

val alive : t -> int
(** live worker processes (idle + busy + spare) *)

val size : t -> int

val live_pids : t -> int list
(** every live worker pid — chaos campaigns pick victims here *)

val busy_pids : t -> int list
(** pids currently serving a request — for kill-mid-request injection *)

val kill_pid : t -> int -> bool
(** send SIGKILL to a worker by pid (chaos helper); false when the pid
    is not a live worker of this pool *)
