/* mcsup_stubs.c — setrlimit bindings for worker processes.
 *
 * The OCaml Unix library exposes no setrlimit, and workers must cap
 * their own address space and CPU time before touching request data:
 * RLIMIT_AS turns a runaway allocation into Out_of_memory (caught and
 * reported) or a clean death the supervisor classifies; RLIMIT_CPU
 * turns an unbounded spin into SIGXCPU / SIGKILL instead of a wedged
 * core the deadline has to sweep up.
 */

#include <caml/mlvalues.h>
#include <caml/memory.h>
#include <sys/resource.h>

/* Cap the address space at [mb] MiB (soft = hard). Returns whether
 * setrlimit succeeded; callers treat failure as advisory — the wall
 * deadline still backstops the request. */
CAMLprim value mcsup_set_rlimit_as(value mb)
{
  CAMLparam1(mb);
  struct rlimit rl;
  rlim_t bytes = (rlim_t) Long_val(mb) * 1024 * 1024;
  rl.rlim_cur = bytes;
  rl.rlim_max = bytes;
  CAMLreturn(Val_bool(setrlimit(RLIMIT_AS, &rl) == 0));
}

/* Cap CPU time at [s] seconds soft / [s]+2 hard: the kernel sends
 * SIGXCPU at the soft limit and SIGKILL at the hard one, so even a
 * handler that ignores SIGXCPU dies two seconds later. */
CAMLprim value mcsup_set_rlimit_cpu(value s)
{
  CAMLparam1(s);
  struct rlimit rl;
  rl.rlim_cur = (rlim_t) Long_val(s);
  rl.rlim_max = (rlim_t) Long_val(s) + 2;
  CAMLreturn(Val_bool(setrlimit(RLIMIT_CPU, &rl) == 0));
}
