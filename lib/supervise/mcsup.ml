(* Mcsup — supervised worker-process pool.  See the interface for the
   design.  Implementation notes:

   - OCaml 5 forbids [Unix.fork] once any domain has ever existed (and
     Mcd spawns domains), so workers are spawned with
     [Unix.create_process_env] re-executing [Sys.executable_name] with
     an environment gate; the hosting binary must call its protocol
     module's [exit_if_worker] before doing anything else.

   - The socketpair is the child's fd 0 and is bidirectional; the
     child's stdout is mapped onto stderr so stray prints can never
     corrupt the frame stream.  Both parent-side fds are close-on-exec
     immediately so concurrent spawns cannot leak one worker's channel
     into another (which would defeat EOF-based retirement).

   - Ownership discipline: a busy worker belongs to the dispatching
     thread, and only that thread reaps it and closes its fd.
     [retire_all]/[close] wait for the busy list to drain (sending
     SIGKILL to stragglers but leaving the reap to the owner), then
     retire idle workers and the spare themselves.  This keeps every
     fd close and waitpid single-owner without a per-worker lock. *)

external set_rlimit_as : int -> bool = "mcsup_set_rlimit_as"
external set_rlimit_cpu : int -> bool = "mcsup_set_rlimit_cpu"

let is_worker ~key = Sys.getenv_opt key = Some "1"
let set_mem_limit_mb mb = set_rlimit_as mb
let set_cpu_limit_s s = set_rlimit_cpu s

(* ------------------------------------------------------------------ *)
(* Failure classification                                              *)
(* ------------------------------------------------------------------ *)

type failure =
  | F_deadline
  | F_signal of int
  | F_exit of int
  | F_channel of string
  | F_spawn of string

let failure_class = function
  | F_deadline -> "deadline"
  | F_signal _ -> "signal"
  | F_exit _ -> "exit"
  | F_channel _ -> "channel"
  | F_spawn _ -> "spawn"

(* OCaml signal numbers are its own negative encoding; name the ones a
   worker plausibly dies of *)
let signal_name s =
  if s = Sys.sigkill then "SIGKILL"
  else if s = Sys.sigterm then "SIGTERM"
  else if s = Sys.sigsegv then "SIGSEGV"
  else if s = Sys.sigabrt then "SIGABRT"
  else if s = Sys.sigbus then "SIGBUS"
  else if s = Sys.sigxcpu then "SIGXCPU"
  else if s = Sys.sigill then "SIGILL"
  else if s = Sys.sigfpe then "SIGFPE"
  else if s = Sys.sigpipe then "SIGPIPE"
  else Printf.sprintf "signal %d" s

let describe_failure = function
  | F_deadline -> "worker exceeded request deadline"
  | F_signal s -> Printf.sprintf "worker killed by %s" (signal_name s)
  | F_exit n -> Printf.sprintf "worker exited with status %d" n
  | F_channel msg -> Printf.sprintf "worker channel broke: %s" msg
  | F_spawn msg -> Printf.sprintf "no worker available: %s" msg

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)
(* ------------------------------------------------------------------ *)

type frame_class = More | Final | Garbage

type codec = {
  cd_read : Unix.file_descr -> (string, string) result;
  cd_write : Unix.file_descr -> string -> unit;
  cd_class : string -> frame_class;
  cd_split :
    (Bytes.t -> int -> int -> [ `Frame of string * int | `Need | `Bad of string ])
    option;
}

type config = {
  sp_size : int;
  sp_env_key : string;
  sp_init : string;
  sp_codec : codec;
  sp_wall_ms : float option;
  sp_grace_ms : float;
  sp_spawn_timeout_ms : float;
  sp_name : string;
}

let default_config codec =
  {
    sp_size = 2;
    sp_env_key = "MCSUP_WORKER";
    sp_init = "";
    sp_codec = codec;
    sp_wall_ms = Some 30_000.;
    sp_grace_ms = 500.;
    sp_spawn_timeout_ms = 10_000.;
    sp_name = "mcsup";
  }

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let m_workers = Mctel.Metrics.gauge ~help:"live supervised workers" "mcsup_workers"

let m_spawns =
  Mctel.Metrics.counter ~help:"worker processes spawned" "mcsup_spawns_total"

let m_respawns =
  Mctel.Metrics.counter ~help:"workers respawned after loss"
    "mcsup_respawns_total"

let m_retries =
  Mctel.Metrics.counter ~help:"requests retried on a fresh worker"
    "mcsup_retries_total"

let m_dispatch_ms =
  Mctel.Metrics.hist ~help:"supervised dispatch latency" "mcsup_dispatch_ms"

let m_kill sg =
  Mctel.Metrics.counter_labeled ~help:"workers killed by the supervisor"
    "mcsup_kills_total" ~label:("sig", sg)

let m_failure cls =
  Mctel.Metrics.counter_labeled ~help:"worker failures by class"
    "mcsup_worker_failures_total" ~label:("class", cls)

(* ------------------------------------------------------------------ *)
(* Pool state                                                          *)
(* ------------------------------------------------------------------ *)

type worker = { w_pid : int; w_fd : Unix.file_descr }

type t = {
  cfg : config;
  mutable init : string;  (* current init frame; retire_all may swap it *)
  mu : Mutex.t;
  cond : Condition.t;
  mutable idle : worker list;
  mutable busy : worker list;
  mutable spare : worker option;
  mutable pending : int;  (* background spawns in flight *)
  mutable gen : int;  (* bumped by retire_all; stale spawns are discarded *)
  mutable closed : bool;
}

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let alive_locked t =
  List.length t.idle + List.length t.busy
  + (match t.spare with Some _ -> 1 | None -> 0)

let sync_gauge_locked t = Mctel.Metrics.set m_workers (alive_locked t)
let now () = Unix.gettimeofday ()

(* ------------------------------------------------------------------ *)
(* Spawning                                                            *)
(* ------------------------------------------------------------------ *)

(* Spawn one worker and complete its init handshake.  Touches no pool
   state; the caller places the worker under the lock. *)
let spawn_worker t =
  match Unix.socketpair ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, _, _) ->
    Error ("socketpair: " ^ Unix.error_message e)
  | sup_fd, wrk_fd -> (
    let env =
      Array.append (Unix.environment ()) [| t.cfg.sp_env_key ^ "=1" |]
    in
    let exe = Sys.executable_name in
    match Unix.create_process_env exe [| exe |] env wrk_fd Unix.stderr
            Unix.stderr
    with
    | exception e ->
      (try Unix.close sup_fd with _ -> ());
      (try Unix.close wrk_fd with _ -> ());
      Error ("spawn: " ^ Printexc.to_string e)
    | pid -> (
      (try Unix.close wrk_fd with _ -> ());
      Mctel.Metrics.inc m_spawns;
      let fail msg =
        (try Unix.kill pid Sys.sigkill with _ -> ());
        (try ignore (Unix.waitpid [] pid) with _ -> ());
        (try Unix.close sup_fd with _ -> ());
        Error msg
      in
      try
        Unix.setsockopt_float sup_fd Unix.SO_RCVTIMEO
          (t.cfg.sp_spawn_timeout_ms /. 1000.);
        t.cfg.sp_codec.cd_write sup_fd t.init;
        match t.cfg.sp_codec.cd_read sup_fd with
        | Ok _ready ->
          Unix.setsockopt_float sup_fd Unix.SO_RCVTIMEO 0.;
          Ok { w_pid = pid; w_fd = sup_fd }
        | Error e -> fail ("worker init: " ^ e)
      with
      | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        fail "worker init: timeout"
      | e -> fail ("worker init: " ^ Printexc.to_string e)))

(* Keep live + pending at the full complement; call under the lock.
   Completed spawns land as the spare first (warm template), overflow
   into idle. *)
let rec replenish_locked t =
  let target = t.cfg.sp_size + 1 in
  if (not t.closed) && alive_locked t + t.pending < target then begin
    t.pending <- t.pending + 1;
    let gen = t.gen in
    ignore
      (Thread.create
         (fun () ->
           let r = spawn_worker t in
           locked t (fun () ->
               t.pending <- t.pending - 1;
               (match r with
               | Ok w ->
                 if t.closed || t.gen <> gen then begin
                   (* pool moved on while we were spawning *)
                   (try Unix.kill w.w_pid Sys.sigkill with _ -> ());
                   (try ignore (Unix.waitpid [] w.w_pid) with _ -> ());
                   try Unix.close w.w_fd with _ -> ()
                 end
                 else begin
                   Mctel.Metrics.inc m_respawns;
                   (match t.spare with
                   | None -> t.spare <- Some w
                   | Some _ -> t.idle <- w :: t.idle);
                   replenish_locked t
                 end
               | Error msg ->
                 if not t.closed then
                   Mcobs.logf Mcobs.Normal "%s: worker spawn failed: %s\n"
                     t.cfg.sp_name msg);
               sync_gauge_locked t;
               Condition.broadcast t.cond))
         ())
  end

(* ------------------------------------------------------------------ *)
(* Reaping                                                             *)
(* ------------------------------------------------------------------ *)

(* Wait for [pid] to exit, polling WNOHANG, escalating to SIGKILL after
   the grace period.  [term_first] sends SIGTERM up front (deadline and
   channel failures); graceful retirement closes the fd instead and
   lets EOF do the asking. *)
let reap t ?(term_first = false) pid =
  if term_first then begin
    (try Unix.kill pid Sys.sigterm with _ -> ());
    Mctel.Metrics.inc (m_kill "term")
  end;
  let deadline = now () +. (t.cfg.sp_grace_ms /. 1000.) in
  let rec poll killed =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
      if (not killed) && now () > deadline then begin
        (try Unix.kill pid Sys.sigkill with _ -> ());
        Mctel.Metrics.inc (m_kill "kill");
        poll true
      end
      else begin
        Thread.delay 0.01;
        poll killed
      end
    | _, st -> st
    | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
      (* someone else reaped it (close racing a dispatch failure) *)
      Unix.WEXITED 0
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> poll killed
  in
  poll false

let classify ~trigger st =
  match trigger with
  | `Deadline -> F_deadline
  | `Channel msg -> (
    match st with
    | Unix.WSIGNALED s -> F_signal s
    | Unix.WEXITED n when n <> 0 -> F_exit n
    | _ -> F_channel msg)

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)
(* ------------------------------------------------------------------ *)

let take t =
  locked t (fun () ->
      let rec go () =
        if t.closed then Error "pool closed"
        else begin
          replenish_locked t;
          match t.idle with
          | w :: rest ->
            t.idle <- rest;
            t.busy <- w :: t.busy;
            Ok w
          | [] -> (
            match t.spare with
            | Some w ->
              t.spare <- None;
              t.busy <- w :: t.busy;
              replenish_locked t;
              Ok w
            | None ->
              if alive_locked t = 0 && t.pending = 0 then
                Error "no live workers"
              else begin
                Condition.wait t.cond t.mu;
                go ()
              end)
        end
      in
      go ())

let release t w =
  locked t (fun () ->
      t.busy <- List.filter (fun x -> x.w_pid <> w.w_pid) t.busy;
      t.idle <- w :: t.idle;
      Condition.broadcast t.cond)

(* The worker failed us: kill with escalation, classify, drop it from
   the busy list, and trigger a respawn. *)
let destroy t w ~trigger =
  let st = reap t ~term_first:true w.w_pid in
  (try Unix.close w.w_fd with _ -> ());
  let f = classify ~trigger st in
  Mctel.Metrics.inc (m_failure (failure_class f));
  locked t (fun () ->
      t.busy <- List.filter (fun x -> x.w_pid <> w.w_pid) t.busy;
      replenish_locked t;
      sync_gauge_locked t;
      Condition.broadcast t.cond);
  f

let attempt t payload =
  match take t with
  | Error msg -> Error (F_spawn msg)
  | Ok w -> (
    let t0 = now () in
    let remaining () =
      match t.cfg.sp_wall_ms with
      | None -> Some None
      | Some wall ->
        let r = (wall /. 1000.) -. (now () -. t0) in
        if r <= 0. then None else Some (Some r)
    in
    let fail trigger = Error (destroy t w ~trigger) in
    match t.cfg.sp_codec.cd_write w.w_fd payload with
    | exception Unix.Unix_error (e, _, _) ->
      fail (`Channel ("write: " ^ Unix.error_message e))
    | exception e -> fail (`Channel ("write: " ^ Printexc.to_string e))
    | () ->
      let finish acc frame =
        (try Unix.setsockopt_float w.w_fd Unix.SO_RCVTIMEO 0. with _ -> ());
        release t w;
        Mctel.Metrics.observe m_dispatch_ms ((now () -. t0) *. 1000.);
        Ok (List.rev (frame :: acc))
      in
      let rec collect acc =
        match remaining () with
        | None -> fail `Deadline
        | Some r -> (
          (try
             Unix.setsockopt_float w.w_fd Unix.SO_RCVTIMEO
               (Option.value r ~default:0.)
           with _ -> ());
          match t.cfg.sp_codec.cd_read w.w_fd with
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
            ->
            fail `Deadline
          | exception Unix.Unix_error (e, _, _) ->
            fail (`Channel (Unix.error_message e))
          | exception e -> fail (`Channel (Printexc.to_string e))
          | Error msg -> fail (`Channel msg)
          | Ok frame -> (
            match t.cfg.sp_codec.cd_class frame with
            | More -> collect (frame :: acc)
            | Final -> finish acc frame
            | Garbage -> fail (`Channel "garbage frame from worker")))
      in
      (* With a splitter in hand, drain the reply as bursts: one bulk
         [read] per wakeup, then split every whole frame already in the
         window.  A diag-heavy response costs a handful of syscalls
         instead of two per frame. *)
      let collect_buffered split =
        let data = ref (Bytes.create 65536) in
        let start = ref 0 and avail = ref 0 in
        let rec go acc =
          match split !data !start !avail with
          | `Bad msg -> fail (`Channel msg)
          | `Frame (frame, used) -> (
            start := !start + used;
            avail := !avail - used;
            match t.cfg.sp_codec.cd_class frame with
            | More -> go (frame :: acc)
            | Final -> finish acc frame
            | Garbage -> fail (`Channel "garbage frame from worker"))
          | `Need -> (
            match remaining () with
            | None -> fail `Deadline
            | Some r -> (
              if !start > 0 then begin
                Bytes.blit !data !start !data 0 !avail;
                start := 0
              end;
              if !avail = Bytes.length !data then begin
                let d = Bytes.create (2 * Bytes.length !data) in
                Bytes.blit !data 0 d 0 !avail;
                data := d
              end;
              (try
                 Unix.setsockopt_float w.w_fd Unix.SO_RCVTIMEO
                   (Option.value r ~default:0.)
               with _ -> ());
              match
                Unix.read w.w_fd !data (!start + !avail)
                  (Bytes.length !data - !start - !avail)
              with
              | 0 -> fail (`Channel "eof")
              | n ->
                avail := !avail + n;
                go acc
              | exception
                  Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
                fail `Deadline
              | exception Unix.Unix_error (e, _, _) ->
                fail (`Channel (Unix.error_message e))
              | exception e -> fail (`Channel (Printexc.to_string e))))
        in
        go []
      in
      (match t.cfg.sp_codec.cd_split with
      | Some split -> collect_buffered split
      | None -> collect []))

let dispatch t payload =
  match attempt t payload with
  | Ok r -> Ok r
  | Error (F_spawn _ as f) -> Error f
  | Error _first ->
    (* the request's frames were never forwarded, so a retry on a fresh
       worker is invisible to the caller *)
    Mctel.Metrics.inc m_retries;
    attempt t payload

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let create cfg =
  if cfg.sp_size < 1 then Error "sp_size must be >= 1"
  else begin
    let t =
      {
        cfg;
        init = cfg.sp_init;
        mu = Mutex.create ();
        cond = Condition.create ();
        idle = [];
        busy = [];
        spare = None;
        pending = 0;
        gen = 0;
        closed = false;
      }
    in
    let rec up n =
      if n = 0 then Ok ()
      else
        match spawn_worker t with
        | Error msg -> Error msg
        | Ok w ->
          (match t.spare with
          | None -> t.spare <- Some w
          | Some _ -> t.idle <- w :: t.idle);
          up (n - 1)
    in
    match up (cfg.sp_size + 1) with
    | Ok () ->
      locked t (fun () -> sync_gauge_locked t);
      Ok t
    | Error msg ->
      List.iter
        (fun w ->
          (try Unix.kill w.w_pid Sys.sigkill with _ -> ());
          (try ignore (Unix.waitpid [] w.w_pid) with _ -> ());
          try Unix.close w.w_fd with _ -> ())
        (t.idle @ Option.to_list t.spare);
      Error msg
  end

(* Gracefully retire one worker we own: close its channel (EOF lets it
   publish its cache and exit 0), escalating if it lingers. *)
let retire_worker t w =
  (try Unix.close w.w_fd with _ -> ());
  let deadline = now () +. (t.cfg.sp_grace_ms /. 1000.) in
  let rec poll escalation =
    match Unix.waitpid [ Unix.WNOHANG ] w.w_pid with
    | 0, _ ->
      if now () > deadline then
        if escalation = 0 then begin
          (try Unix.kill w.w_pid Sys.sigterm with _ -> ());
          Mctel.Metrics.inc (m_kill "term");
          poll 1
        end
        else begin
          (try Unix.kill w.w_pid Sys.sigkill with _ -> ());
          Mctel.Metrics.inc (m_kill "kill");
          ignore (Unix.waitpid [] w.w_pid)
        end
      else begin
        Thread.delay 0.01;
        poll escalation
      end
    | _, _ -> ()
    | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> poll escalation
  in
  poll 0

(* Wait (bounded) for the busy list to drain; after [cap] seconds send
   SIGKILL to stragglers — their owning dispatch threads will reap them
   through the normal failure path. *)
let drain_busy_locked t ~cap =
  let deadline = now () +. cap in
  let kicked = ref false in
  while t.busy <> [] do
    if now () > deadline && not !kicked then begin
      kicked := true;
      List.iter
        (fun w -> try Unix.kill w.w_pid Sys.sigkill with _ -> ())
        t.busy
    end;
    Mutex.unlock t.mu;
    Thread.delay 0.02;
    Mutex.lock t.mu
  done

let grab_all_locked t =
  let all = t.idle @ Option.to_list t.spare in
  t.idle <- [];
  t.spare <- None;
  all

let retire_all ?init t =
  let old =
    locked t (fun () ->
        drain_busy_locked t ~cap:60.;
        t.gen <- t.gen + 1;
        Option.iter (fun i -> t.init <- i) init;
        grab_all_locked t)
  in
  List.iter (retire_worker t) old;
  let fresh = ref [] in
  for _ = 1 to t.cfg.sp_size + 1 do
    match spawn_worker t with
    | Ok w -> fresh := w :: !fresh
    | Error msg ->
      Mcobs.logf Mcobs.Normal "%s: respawn after retire failed: %s\n"
        t.cfg.sp_name msg
  done;
  locked t (fun () ->
      if t.closed then
        List.iter
          (fun w ->
            (try Unix.kill w.w_pid Sys.sigkill with _ -> ());
            (try ignore (Unix.waitpid [] w.w_pid) with _ -> ());
            try Unix.close w.w_fd with _ -> ())
          !fresh
      else
        List.iter
          (fun w ->
            Mctel.Metrics.inc m_respawns;
            match t.spare with
            | None -> t.spare <- Some w
            | Some _ -> t.idle <- w :: t.idle)
          !fresh;
      sync_gauge_locked t;
      Condition.broadcast t.cond)

let close t =
  let old =
    locked t (fun () ->
        if t.closed then []
        else begin
          t.closed <- true;
          t.gen <- t.gen + 1;
          Condition.broadcast t.cond;
          drain_busy_locked t ~cap:5.;
          grab_all_locked t
        end)
  in
  List.iter (retire_worker t) old;
  locked t (fun () ->
      sync_gauge_locked t;
      Condition.broadcast t.cond)

(* ------------------------------------------------------------------ *)
(* Introspection / chaos helpers                                       *)
(* ------------------------------------------------------------------ *)

let alive t = locked t (fun () -> alive_locked t)
let size t = t.cfg.sp_size

let live_pids t =
  locked t (fun () ->
      List.map (fun w -> w.w_pid) (t.idle @ t.busy @ Option.to_list t.spare))

let busy_pids t = locked t (fun () -> List.map (fun w -> w.w_pid) t.busy)

let kill_pid t pid =
  let mine =
    locked t (fun () ->
        List.exists
          (fun w -> w.w_pid = pid)
          (t.idle @ t.busy @ Option.to_list t.spare))
  in
  if mine then (
    (try Unix.kill pid Sys.sigkill with _ -> ());
    true)
  else false
