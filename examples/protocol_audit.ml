(** Full audit: generate the five FLASH protocols plus common code, run
    all eight checkers, and print every table from the paper's evaluation
    with paper-published and measured numbers side by side.

    Run with: [dune exec examples/protocol_audit.exe] *)

let () =
  print_endline "Generating the synthetic FLASH protocol corpus...";
  let corpus = Corpus.generate () in
  List.iter
    (fun (p : Corpus.protocol) ->
      Printf.printf "  %-10s %6d LOC, %3d routines, %2d seeded fault sites\n"
        p.Corpus.name p.Corpus.loc
        (List.fold_left
           (fun acc tu -> acc + List.length (Ast.functions tu))
           0 p.Corpus.tus)
        (List.length p.Corpus.manifest))
    corpus.Corpus.protocols;
  print_newline ();
  List.iter
    (fun t ->
      Table.print t;
      print_newline ())
    (Experiments.all corpus);
  (* the paper's bottom line *)
  let bugs, fps =
    List.fold_left
      (fun (b, f) (p : Corpus.protocol) ->
        List.fold_left
          (fun (b, f) (c : Registry.checker) ->
            let diags = c.Registry.run ~spec:p.Corpus.spec p.Corpus.tus in
            List.fold_left
              (fun (b, f) (d : Diag.t) ->
                match
                  Manifest.classify p.Corpus.manifest
                    ~checker:c.Registry.name ~protocol:p.Corpus.name
                    ~func:d.Diag.func
                with
                | Some { Manifest.kind = Manifest.Bug; _ }
                  when c.Registry.name <> "exec_restrict" ->
                  (b + 1, f)
                | Some { Manifest.kind = Manifest.False_positive; _ } ->
                  (b, f + 1)
                | _ -> (b, f))
              (b, f) diags)
          (b, f) Registry.all)
      (0, 0) corpus.Corpus.protocols
  in
  Printf.printf
    "bottom line: %d errors (paper: 34) and %d false positives (paper: 69)\n"
    bugs fps
