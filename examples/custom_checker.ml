(** A user-defined invariant, showing the framework is not FLASH-specific.

    The paper's thesis is that *implementors* can write system-specific
    checkers in hours.  Here is a lock discipline for an imaginary driver:

    - "if you acquire a lock you must release it" (template 3 in the
      paper's Section 3.1);
    - "do not sleep while holding a spinlock" (template "if X then not Y").

    Run with: [dune exec examples/custom_checker.exe] *)

type state = Unlocked | Locked

let checker_name = "spinlock"

let lock = ("l", Pattern.Scalar)

let checker : state Sm.t =
  Sm.make ~name:checker_name
    ~start:(fun _ -> Some Unlocked)
    ~rules:(function
      | Unlocked ->
        [
          Sm.goto_rule (Pattern.expr ~decls:[ lock ] "spin_lock(l)") Locked;
          Sm.rule (Pattern.expr ~decls:[ lock ] "spin_unlock(l)")
            (fun ctx ->
              Sm.err ~checker:checker_name ctx
                "unlock without a matching lock";
              Sm.Stay);
        ]
      | Locked ->
        [
          Sm.goto_rule (Pattern.expr ~decls:[ lock ] "spin_unlock(l)")
            Unlocked;
          Sm.rule (Pattern.expr ~decls:[ lock ] "spin_lock(l)") (fun ctx ->
              Sm.err ~checker:checker_name ctx "double acquire";
              Sm.Stay);
          Sm.err_rule ~checker:checker_name
            (Pattern.alt
               [ Pattern.call "msleep" ~arity:1; Pattern.call "kmalloc_wait" ~arity:1 ])
            "sleeping while holding a spinlock";
        ])
    ~state_to_string:(function Unlocked -> "unlocked" | Locked -> "locked")
    ()

(* flag paths that reach the end of the function still holding the lock *)
let at_exit : state Engine.exit_hook =
 fun ctx state ->
  match state with
  | Locked ->
    Sm.err ~checker:checker_name ctx "function returns with the lock held"
  | Unlocked -> ()

let driver_source =
  {|
void spin_lock(long l);
void spin_unlock(long l);
void msleep(int ms);
long device_lock;

int probe(int want)
{
  spin_lock(device_lock);
  if (want > 4) {
    msleep(10);                /* sleeping under the lock */
    spin_unlock(device_lock);
    return 1;
  }
  if (want < 0) {
    return 0 - 1;              /* leaks the lock */
  }
  spin_unlock(device_lock);
  return 0;
}
|}

let () =
  print_endline "Checking driver code with a custom lock checker...";
  let tu = Frontend.of_string ~file:"driver.c" driver_source in
  let diags = Engine.check ~at_exit checker (`Unit tu) in
  List.iter (fun d -> Format.printf "  %a@." Diag.pp d) diags;
  Printf.printf "found %d violation(s) (expected 2)\n" (List.length diags)
