(** Quickstart: write the paper's Figure 2 checker and run it.

    The checker enforces "WAIT_FOR_DB_FULL must come before
    MISCBUS_READ_DB" — a handler that reads its data buffer before the
    hardware finished filling it has a race that corrupts data
    sporadically.

    Run with: [dune exec examples/quickstart.exe] *)

(* The metal source from the paper's Figure 2 reads:

     sm wait_for_db {
       decl { scalar } addr, buf;
       start:
         { WAIT_FOR_DB_FULL(addr); } ==> stop
       | { MISCBUS_READ_DB(addr, buf); } ==>
           { err("Buffer not synchronized"); } ;
     }

   and transliterates one-for-one: *)

type state = Start

let checker : state Sm.t =
  let addr = ("addr", Pattern.Scalar) in
  let buf = ("buf", Pattern.Scalar) in
  Sm.make ~name:"wait_for_db"
    ~start:(fun _ -> Some Start)
    ~rules:(fun Start ->
      [
        (* once the handler has synchronised, this path is fine *)
        Sm.stop_rule (Pattern.expr ~decls:[ addr ] "WAIT_FOR_DB_FULL(addr)");
        (* a read before that is the race *)
        Sm.err_rule ~checker:"wait_for_db"
          (Pattern.expr ~decls:[ addr; buf ] "MISCBUS_READ_DB(addr, buf)")
          "Buffer not synchronized";
      ])
    ()

(* A handler with the bug on one of its three paths: the else-branch
   reads the buffer without waiting. *)
let handler_source =
  {|
void WAIT_FOR_DB_FULL(long addr);
long MISCBUS_READ_DB(long addr, int off);

void NIRemotePut(void)
{
  long addr;
  long v;
  addr = 128;
  if (addr > 64) {
    WAIT_FOR_DB_FULL(addr);
    v = MISCBUS_READ_DB(addr, 0);
  } else {
    v = MISCBUS_READ_DB(addr, 0);   /* <- race */
  }
  v = v + MISCBUS_READ_DB(addr, 4); /* <- race on the else path only */
}
|}

let () =
  print_endline "Checking NIRemotePut with the Figure 2 checker...";
  let tu = Frontend.of_string ~file:"quickstart.c" handler_source in
  let diags = Engine.check checker (`Unit tu) in
  List.iter (fun d -> Format.printf "  %a@." Diag.pp d) diags;
  Printf.printf "found %d violation(s) (expected 2)\n" (List.length diags)
