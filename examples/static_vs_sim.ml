(** The paper's motivating comparison, made measurable.

    Section 2: the FLASH protocols were tested for years in the detailed
    FlashLite simulator, yet "no protocol has booted perfectly on the
    hardware on the first try" — the remaining bugs hide on rare corner
    paths that simulation almost never exercises.

    Here we take one executable bitvector protocol with four seeded bugs
    (double free, fill race, length/data mismatch, buffer leak — all on
    corner paths), and compare:

    - dynamic testing: how many simulated transactions until each bug
      first *manifests* as a runtime fault, and
    - static checking: the metal checkers, which flag all four sites
      immediately, with line numbers.

    Run with: [dune exec examples/static_vs_sim.exe] *)

let transactions = 4000

let run_static () =
  print_endline "--- static checking (metal) ---";
  let tus = Golden.program Golden.Buggy in
  let spec = Golden.spec in
  let total = ref 0 in
  List.iter
    (fun (c : Registry.checker) ->
      let diags = c.Registry.run ~spec tus in
      List.iter
        (fun d ->
          incr total;
          Format.printf "  %a@." Diag.pp d)
        diags)
    Registry.all;
  Printf.printf "  => %d report(s), produced in one compile pass\n\n" !total

let run_dynamic ~variant ~label =
  Printf.printf "--- dynamic testing (%s protocol, %d transactions) ---\n"
    label transactions;
  let result =
    Sim.run { Sim.default_config with Sim.transactions; Sim.variant }
  in
  Format.printf "%a@.@." Sim.pp_result result;
  result

let () =
  run_static ();
  let clean = run_dynamic ~variant:Golden.Clean ~label:"clean" in
  let buggy = run_dynamic ~variant:Golden.Buggy ~label:"buggy" in
  Printf.printf
    "summary: the clean protocol shows %d faults and %d corruptions;\n\
     the buggy one needs hundreds of transactions (and the right random\n\
     corner conditions) before each fault class first shows up, while\n\
     the checkers point at all the seeded lines immediately.\n"
    (List.length clean.Sim.faults)
    clean.Sim.stats.Sim.corruptions;
  ignore buggy
