(** Profiling a checking run with Mcobs.

    Enables tracing, runs every registered checker over the synthetic
    corpus through the Mcd scheduler, and writes a Chrome trace-event
    file — open [trace_profile.json] in [chrome://tracing] or
    https://ui.perfetto.dev to see the per-domain timeline: parse and
    typecheck spans, one [engine.check_fn] span per (checker x function)
    unit, the scheduler's prepare/resolve/pool/store phases, and the
    cache counters.

    Run with: [dune exec examples/trace_profile.exe] *)

let () =
  Mcobs.set_enabled true;
  let corpus = Corpus.generate () in
  let jobs =
    List.map
      (fun (p : Corpus.protocol) ->
        { Mcd.spec = p.Corpus.spec; tus = p.Corpus.tus })
      corpus.Corpus.protocols
  in
  let results, stats = Mcd.check_jobs ~jobs:4 jobs in
  let diags =
    List.fold_left
      (fun acc per_checker ->
        List.fold_left
          (fun acc (_, ds) -> acc + List.length ds)
          acc per_checker)
      0 results
  in
  Printf.printf "checked %d protocol(s): %d diagnostic(s)\n"
    (List.length results) diags;
  Format.printf "%a@." Mcd.pp_stats_line stats;
  let snap = Mcobs.snapshot () in
  Mcobs.export_chrome_file "trace_profile.json" snap;
  Printf.printf "wrote trace_profile.json (%d spans) — open it in \
                 chrome://tracing\n"
    (List.length snap.Mcobs.spans);
  (* the same data, summarised for the terminal *)
  Format.printf "%a@." Mcobs.pp_summary snap
