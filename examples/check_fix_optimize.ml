(** The full MC trifecta — check, transform, optimise — on one messy
    handler.

    The paper positions meta-level compilation as a framework for all
    three; the FLASH study demonstrates checking.  This example runs the
    other two legs of the pipeline on a handler that has a missing
    simulator hook, an unsynchronised read, a leaking early return, and a
    redundant second wait.

    Run with: [dune exec examples/check_fix_optimize.exe] *)

let messy =
  {|
void NIRemotePut(void)
{
  HANDLER_DEFS();
  long addr;
  long v;
  addr = HANDLER_GLOBALS(header.nh.address);
  v = MISCBUS_READ_DB(addr, 0);          /* race: no wait yet          */
  if (v > 4096) {
    return;                              /* leak: buffer never freed   */
  }
  WAIT_FOR_DB_FULL(addr);
  WAIT_FOR_DB_FULL(addr);                /* redundant second wait      */
  v = v + MISCBUS_READ_DB(addr, 4);
  HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
  PI_SEND(F_DATA, 0, 0, W_NOWAIT, 1, 0);
  FREE_DB();
}
|}

let spec =
  {
    Flash_api.p_name = "example";
    p_handlers =
      [
        {
          Flash_api.h_name = "NIRemotePut";
          h_kind = Flash_api.Hw_handler;
          h_lane_allowance = [| 1; 1; 1; 1 |];
          h_no_stack = false;
        };
      ];
    p_free_funcs = [];
    p_use_funcs = [];
    p_cond_free_funcs = [];
  }

let report label tus =
  Printf.printf "--- %s ---\n" label;
  let any = ref false in
  List.iter
    (fun (c : Registry.checker) ->
      List.iter
        (fun d ->
          any := true;
          Format.printf "  %a@." Diag.pp d)
        (c.Registry.run ~spec tus))
    Registry.all;
  if not !any then print_endline "  (clean)";
  print_newline ()

let () =
  let tus = Frontend.of_strings [ ("messy.c", Prelude.text ^ messy) ] in
  report "CHECK: the original handler" tus;

  print_endline "FIX: repairing hooks, races and leaks...";
  let fixed = Fixer.fix_all ~spec tus in
  (* round-trip through source so the repair is a real rewrite *)
  let fixed =
    Frontend.of_strings
      (List.map (fun tu -> (tu.Ast.tu_file, Pp.tunit_to_string tu)) fixed)
  in
  print_newline ();
  report "CHECK: after the fixes" fixed;

  print_endline "OPTIMIZE: removing redundant synchronisation...";
  let optimized, r = Optimizer.optimize fixed in
  Printf.printf "  removed %d wait(s) in %d function(s)\n\n"
    r.Optimizer.waits_removed r.Optimizer.functions_changed;
  report "CHECK: after optimisation (still clean)" optimized;

  print_endline "the final handler:";
  List.iter
    (fun tu ->
      match Ast.find_function tu "NIRemotePut" with
      | Some f -> Format.printf "%a@." Pp.pp_func f
      | None -> ())
    optimized
