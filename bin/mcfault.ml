(* mcfault — fault-injection campaign driver for the hardened pipeline.

   Plants seeded faults (parser, cache, checker, budget classes) one at
   a time and asserts the containment invariants after each: no uncaught
   exception, no hang, deterministic diagnostics on the unaffected
   remainder, coverage loss reported.  Exit 0 iff every injection held. *)

let run seed count quick classes out =
  let count = if quick then min count 60 else count in
  let classes =
    match classes with
    | [] -> Faultinject.all_classes
    | names ->
      List.map
        (fun n ->
          match Faultinject.klass_of_name n with
          | Some k -> k
          | None ->
            Printf.eprintf
              "mcfault: unknown class %S (expected parser, cache, checker \
               or budget)\n"
              n;
            exit 2)
        names
  in
  let s = Faultinject.campaign ~seed ~count ~classes () in
  Faultinject.pp_summary Format.std_formatter s;
  (match out with
  | None -> ()
  | Some path ->
    Mcheck_api.write_file path (Faultinject.summary_to_json s);
    Printf.printf "wrote %s\n" path);
  if s.Faultinject.failed = 0 then 0 else 1

open Cmdliner

let seed_arg =
  let doc = "Campaign seed (the run is deterministic in it)." in
  Arg.(value & opt int 0xFA17 & info [ "seed" ] ~docv:"N" ~doc)

let count_arg =
  let doc = "Number of injections." in
  Arg.(value & opt int 500 & info [ "count"; "n" ] ~docv:"N" ~doc)

let quick_arg =
  let doc = "Cap the campaign at 60 injections (CI smoke)." in
  Arg.(value & flag & info [ "quick" ] ~doc)

let classes_arg =
  let doc =
    "Restrict to these fault classes (parser, cache, checker, budget); \
     repeatable."
  in
  Arg.(value & opt_all string [] & info [ "classes"; "class" ] ~docv:"CLASS" ~doc)

let out_arg =
  let doc = "Write a JSON summary to $(docv)." in
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let cmd =
  let doc = "fault-injection campaigns against the mcheck pipeline" in
  let info = Cmd.info "mcfault" ~doc in
  Cmd.v info
    Term.(const run $ seed_arg $ count_arg $ quick_arg $ classes_arg $ out_arg)

let () = exit (Cmd.eval' cmd)
