(* mcfault — fault-injection campaign driver for the hardened pipeline.

   Plants seeded faults (parser, cache, checker, budget classes) one at
   a time and asserts the containment invariants after each: no uncaught
   exception, no hang, deterministic diagnostics on the unaffected
   remainder, coverage loss reported.  Exit 0 iff every injection held.

   --chaos lifts the campaign to the service tier: a live supervised
   mcheckd under worker kills, memory/stack/CPU bombs, slowloris and
   garbage framing, cache-directory corruption, and overload bursts.
   Exit 0 iff zero failed injections, zero daemon deaths, and zero
   lost in-flight requests on the drain finale. *)

let run_chaos seed count quick out =
  (* the campaign's mirror and cache-writer sessions would otherwise
     interleave mcd progress lines with the summary *)
  Mcobs.set_verbosity Mcobs.Quiet;
  let s = Chaos.campaign ~seed ~count ~quick () in
  Chaos.pp_summary Format.std_formatter s;
  (match out with
  | None -> ()
  | Some path ->
    Mcheck_api.write_file path (Chaos.summary_to_json s);
    Printf.printf "wrote %s\n" path);
  if Chaos.gates_ok s then 0 else 1

let run chaos seed count quick classes out =
  if chaos then
    run_chaos seed
      (if count = 500 then 340 else count)
      quick out
  else
  let count = if quick then min count 60 else count in
  let classes =
    match classes with
    | [] -> Faultinject.all_classes
    | names ->
      List.map
        (fun n ->
          match Faultinject.klass_of_name n with
          | Some k -> k
          | None ->
            Printf.eprintf
              "mcfault: unknown class %S (expected parser, cache, checker \
               or budget)\n"
              n;
            exit 2)
        names
  in
  let s = Faultinject.campaign ~seed ~count ~classes () in
  Faultinject.pp_summary Format.std_formatter s;
  (match out with
  | None -> ()
  | Some path ->
    Mcheck_api.write_file path (Faultinject.summary_to_json s);
    Printf.printf "wrote %s\n" path);
  if s.Faultinject.failed = 0 then 0 else 1

open Cmdliner

let chaos_arg =
  let doc =
    "Run the service-tier chaos campaign against a live supervised \
     mcheckd (worker kills, OOM/stack/CPU bombs, slowloris, garbage \
     frames, cache-directory corruption, overload bursts) instead of \
     the in-process fault classes."
  in
  Arg.(value & flag & info [ "chaos" ] ~doc)

let seed_arg =
  let doc = "Campaign seed (the run is deterministic in it)." in
  Arg.(value & opt int 0xFA17 & info [ "seed" ] ~docv:"N" ~doc)

let count_arg =
  let doc = "Number of injections (with --chaos the default is 340)." in
  Arg.(value & opt int 500 & info [ "count"; "n" ] ~docv:"N" ~doc)

let quick_arg =
  let doc = "Cap the campaign at 60 injections (CI smoke)." in
  Arg.(value & flag & info [ "quick" ] ~doc)

let classes_arg =
  let doc =
    "Restrict to these fault classes (parser, cache, checker, budget); \
     repeatable."
  in
  Arg.(value & opt_all string [] & info [ "classes"; "class" ] ~docv:"CLASS" ~doc)

let out_arg =
  let doc = "Write a JSON summary to $(docv)." in
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let cmd =
  let doc = "fault-injection campaigns against the mcheck pipeline" in
  let info = Cmd.info "mcfault" ~doc in
  Cmd.v info
    Term.(
      const run $ chaos_arg $ seed_arg $ count_arg $ quick_arg $ classes_arg
      $ out_arg)

let () =
  Serve.Worker.exit_if_worker ();
  exit (Cmd.eval' cmd)
