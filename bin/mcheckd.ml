(** mcheckd — the checking-as-a-service daemon.

    Serve mode (the default): bind a Unix or TCP socket, hold one warm
    {!Mcheck_api.Session} (pre-built Preps via the fused engine, the
    content-hash Mcd cache in memory), and answer [Serve.Proto] check
    requests until drained.

    - [mcheckd --socket PATH] / [mcheckd --tcp HOST:PORT] — listen;
    - [--jobs N] — Mcd domain count for each check;
    - [--cache FILE] — load the result cache at startup, persist it at
      drain/reload (in-memory only otherwise; the cache is always warm
      within a daemon lifetime);
    - [--metal FILE] — serve a metal-spec checker instead of the nine
      builtins (re-read on reload);
    - [--warm] — run the builtin corpus through the session before
      accepting, so the first request is already incremental;
    - [--workers N] — dispatch checks into a pool of N supervised
      worker processes (0, the default, keeps the in-process path):
      a poisoned unit can kill a worker but never the daemon.
      [--worker-mem MB] / [--worker-cpu S] set per-worker RLIMIT_AS /
      RLIMIT_CPU, [--request-timeout MS] the per-request wall deadline,
      [--cache-dir DIR] a shared multi-writer cache directory;
    - [--max-inflight N] — admission bound: past N in-flight checks,
      new ones are shed with a fast R_overloaded + Retry-After.

    Telemetry (serve mode): [--metrics-addr HOST:PORT] serves the live
    metrics registry over HTTP ([/metrics] Prometheus text,
    [/metrics.json]); [--access-log FILE] writes one JSONL line per
    request ([--log-sample N] keeps every N-th, SIGHUP reopens the file
    for rotation); the flight recorder keeps the span trees of recent
    requests, always retaining ones slower than [--flight-threshold]
    milliseconds or ending in an error ([--flight-capacity] per ring);
    [--no-tracing] leaves span recording off (metrics and the access
    log stay live).

    Control mode (acts as a client against the same address, then
    exits): [--drain] finishes in-flight requests and shuts the daemon
    down, [--reload] swaps specs without dropping connections,
    [--stats] prints daemon/session statistics as JSON ([--human] for
    text), [--metrics] prints the live registry (Prometheus text, or
    JSON with [--json]), [--dump-flight] prints the flight recorder's
    JSON dump, [--ping] checks liveness.  SIGINT/SIGTERM initiate the
    same graceful drain. *)

open Cmdliner

type control =
  | Serve
  | Ctl_drain
  | Ctl_reload
  | Ctl_stats
  | Ctl_ping
  | Ctl_metrics
  | Ctl_flight

let fail_usable msg =
  Printf.eprintf "mcheckd: %s\n" msg;
  exit (Robust.exit_code Robust.Unusable)

let run_control addr ctl ~human ~json =
  match Serve.Client.connect addr with
  | Error e -> fail_usable (Serve.Client.err_to_string e)
  | Ok c ->
    let r =
      match ctl with
      | Ctl_drain -> Result.map (fun () -> "draining") (Serve.Client.drain c)
      | Ctl_reload ->
        Result.map (fun () -> "reloaded") (Serve.Client.reload c)
      | Ctl_stats ->
        if human then Serve.Client.stats c else Serve.Client.stats_json c
      | Ctl_metrics ->
        Serve.Client.metrics c
          (if json then Serve.Proto.M_json else Serve.Proto.M_prom)
      | Ctl_flight -> Serve.Client.flight c
      | Ctl_ping -> Result.map (fun () -> "pong") (Serve.Client.ping c)
      | Serve -> assert false
    in
    Serve.Client.close c;
    (match r with
    | Ok text ->
      print_string text;
      if text = "" || text.[String.length text - 1] <> '\n' then
        print_newline ()
    | Error e -> fail_usable (Serve.Client.err_to_string e));
    0

let run_serve addr jobs cache_file metal warm_flag strict unit_fuel
    unit_deadline idle_timeout telemetry supervise max_inflight =
  (* a client that vanishes mid-reply must not kill the daemon: EPIPE
     becomes a counted metric, not a signal *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ());
  let api =
    {
      Mcheck_api.default_config with
      jobs;
      incremental = true;
      cache_file;
      strict;
      budget = { Engine.fuel = unit_fuel; deadline_ms = unit_deadline };
    }
  in
  let cfg =
    {
      Serve.Server.addr;
      api;
      metal_paths = metal;
      idle_timeout;
      telemetry;
      supervise;
      max_inflight;
    }
  in
  match Serve.Server.create cfg with
  | Error msg -> fail_usable msg
  | Ok t ->
    (* signal handlers only flip atomics: taking the server mutex at a
       signal point could deadlock against our own thread *)
    let want_drain = Atomic.make false in
    let want_reopen = Atomic.make false in
    let on_signal _ = Atomic.set want_drain true in
    (try Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal)
     with _ -> ());
    (try Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal)
     with _ -> ());
    (try
       Sys.set_signal Sys.sighup
         (Sys.Signal_handle (fun _ -> Atomic.set want_reopen true))
     with _ -> ());
    let _watcher =
      Thread.create
        (fun () ->
          while not (Serve.Server.draining t) do
            Thread.delay 0.1;
            if Atomic.get want_drain then Serve.Server.initiate_drain t;
            if Atomic.get want_reopen then begin
              Atomic.set want_reopen false;
              Serve.Server.reopen_access_log t
            end
          done)
        ()
    in
    if warm_flag then begin
      Mcobs.logf Mcobs.Normal "mcheckd: warming on the builtin corpus";
      Serve.Server.warm t
    end;
    Serve.Server.run t;
    0

let main socket tcp ctl_drain ctl_reload ctl_stats ctl_ping ctl_metrics
    ctl_flight human json jobs cache metal warm_flag strict unit_fuel
    unit_deadline idle_timeout metrics_addr access_log log_sample
    flight_capacity flight_threshold no_tracing workers worker_mem
    worker_cpu request_timeout max_inflight cache_dir quiet verbose =
  Mcobs.set_verbosity
    (if quiet then Mcobs.Quiet
     else if verbose then Mcobs.Verbose
     else Mcobs.Normal);
  let addr =
    match tcp with
    | Some spec -> (
      match Serve.Proto.parse_addr spec with
      | Ok (Serve.Proto.Tcp _ as a) -> a
      | Ok (Serve.Proto.Unix_sock _) -> fail_usable "--tcp wants HOST:PORT"
      | Error msg -> fail_usable msg)
    | None -> Serve.Proto.Unix_sock socket
  in
  let ctl =
    match
      List.filter_map Fun.id
        [
          (if ctl_drain then Some Ctl_drain else None);
          (if ctl_reload then Some Ctl_reload else None);
          (if ctl_stats then Some Ctl_stats else None);
          (if ctl_ping then Some Ctl_ping else None);
          (if ctl_metrics then Some Ctl_metrics else None);
          (if ctl_flight then Some Ctl_flight else None);
        ]
    with
    | [] -> Serve
    | [ c ] -> c
    | _ ->
      fail_usable
        "pick one of --drain / --reload / --stats / --metrics / \
         --dump-flight / --ping"
  in
  match ctl with
  | Serve ->
    let telemetry =
      {
        Serve.Server.tel_tracing = not no_tracing;
        tel_access_log = access_log;
        tel_sample = log_sample;
        tel_flight_capacity = flight_capacity;
        tel_flight_threshold_ms = flight_threshold;
        tel_metrics_addr =
          (match metrics_addr with
          | None -> None
          | Some spec -> (
            match Serve.Proto.parse_addr spec with
            | Ok a -> Some a
            | Error msg -> fail_usable ("--metrics-addr: " ^ msg)));
      }
    in
    let supervise =
      if workers <= 0 then None
      else
        Some
          {
            Serve.Server.sv_workers = workers;
            sv_mem_mb = worker_mem;
            sv_cpu_s = worker_cpu;
            sv_wall_ms = request_timeout;
            sv_cache_dir = cache_dir;
            sv_allow_chaos = false;
          }
    in
    run_serve addr jobs cache metal warm_flag strict unit_fuel unit_deadline
      idle_timeout telemetry supervise max_inflight
  | ctl -> run_control addr ctl ~human ~json

let socket_arg =
  Arg.(
    value & opt string "mcheckd.sock"
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket to listen on (or to control).")

let tcp_arg =
  Arg.(
    value & opt (some string) None
    & info [ "tcp" ] ~docv:"HOST:PORT"
        ~doc:"Listen on TCP instead of a Unix socket.")

let drain_arg =
  Arg.(
    value & flag
    & info [ "drain" ]
        ~doc:
          "Control mode: ask the daemon to finish in-flight requests and \
           shut down, then exit.")

let reload_arg =
  Arg.(
    value & flag
    & info [ "reload" ]
        ~doc:
          "Control mode: ask the daemon to finish in-flight requests and \
           rebuild its session (metal specs re-read, cache re-loaded).")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Control mode: print daemon statistics as JSON ($(b,--human) \
           for the text form).")

let ping_arg =
  Arg.(value & flag & info [ "ping" ] ~doc:"Control mode: liveness check.")

let metrics_ctl_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Control mode: print the daemon's live metrics registry in \
           Prometheus text exposition format ($(b,--json) for JSON).")

let flight_ctl_arg =
  Arg.(
    value & flag
    & info [ "dump-flight" ]
        ~doc:
          "Control mode: print the daemon's flight recorder — the span \
           trees of recent, slow, and failed requests — as JSON.")

let human_arg =
  Arg.(
    value & flag
    & info [ "human" ] ~doc:"With $(b,--stats): the human-readable text \
                             form instead of JSON.")

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ] ~doc:"With $(b,--metrics): JSON instead of \
                            Prometheus text.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:"Mcd domain count used for each check request.")

let cache_arg =
  Arg.(
    value & opt (some string) None
    & info [ "cache" ] ~docv:"FILE"
        ~doc:
          "Load the content-hash result cache from $(docv) at startup \
           and persist it at drain/reload.  Without this the cache \
           lives in memory for the daemon's lifetime.")

let metal_arg =
  Arg.(
    value & opt_all file []
    & info [ "m"; "metal" ] ~docv:"FILE"
        ~doc:
          "Serve a checker written in metal syntax instead of the nine \
           builtins (repeatable; re-read on --reload).")

let warm_arg =
  Arg.(
    value & flag
    & info [ "warm" ]
        ~doc:
          "Run the builtin corpus through the session before accepting, \
           so caches and code paths are hot for the first request.")

let strict_arg =
  Arg.(
    value & flag
    & info [ "strict" ]
        ~doc:"Fail each request fast on unparseable input (exit 3 on \
              the wire) instead of recovering.")

let unit_fuel_arg =
  Arg.(
    value & opt (some int) None
    & info [ "unit-fuel" ] ~docv:"N" ~doc:"Per-unit step budget.")

let unit_deadline_arg =
  Arg.(
    value & opt (some float) None
    & info [ "unit-deadline" ] ~docv:"MS"
        ~doc:"Per-unit wall-clock budget in milliseconds.")

let idle_arg =
  Arg.(
    value & opt float 10.0
    & info [ "idle-timeout" ] ~docv:"S"
        ~doc:"Reap client connections idle for more than $(docv) seconds.")

let metrics_addr_arg =
  Arg.(
    value & opt (some string) None
    & info [ "metrics-addr" ] ~docv:"ADDR"
        ~doc:
          "Serve the live metrics over HTTP on $(docv) (HOST:PORT or a \
           unix socket path): GET /metrics is Prometheus text, \
           /metrics.json is JSON.")

let access_log_arg =
  Arg.(
    value & opt (some string) None
    & info [ "access-log" ] ~docv:"FILE"
        ~doc:
          "Append one JSON line per request to $(docv): trace id, peer, \
           kind, bytes, wall time, outcome, finding/diagnostic counts, \
           cache hits.  SIGHUP reopens the file (log rotation).")

let log_sample_arg =
  Arg.(
    value & opt int 1
    & info [ "log-sample" ] ~docv:"N"
        ~doc:"Write every $(docv)-th access-log line (1 = all).")

let flight_capacity_arg =
  Arg.(
    value & opt int 64
    & info [ "flight-capacity" ] ~docv:"N"
        ~doc:"Flight-recorder ring size (recent and notable rings each).")

let flight_threshold_arg =
  Arg.(
    value & opt float 250.
    & info [ "flight-threshold" ] ~docv:"MS"
        ~doc:
          "Requests slower than $(docv) milliseconds are always retained \
           by the flight recorder, as are requests ending in an error.")

let no_tracing_arg =
  Arg.(
    value & flag
    & info [ "no-tracing" ]
        ~doc:
          "Do not record request spans (disables the flight recorder's \
           span trees; metrics and the access log stay live).")

let workers_arg =
  Arg.(
    value & opt int 0
    & info [ "workers" ] ~docv:"N"
        ~doc:
          "Dispatch each check into a pool of $(docv) supervised worker \
           processes (plus one hot spare).  A worker that dies, blows \
           its memory/CPU limit, or misses the request deadline is \
           killed and respawned; the request is retried once on a \
           fresh worker before the client sees an error.  0 (the \
           default) keeps the historical in-process path.")

let worker_mem_arg =
  Arg.(
    value & opt (some int) (Some 1024)
    & info [ "worker-mem" ] ~docv:"MB"
        ~doc:"Per-worker address-space limit (RLIMIT_AS), in MiB.")

let worker_cpu_arg =
  Arg.(
    value & opt (some int) (Some 30)
    & info [ "worker-cpu" ] ~docv:"S"
        ~doc:"Per-worker CPU-time limit (RLIMIT_CPU), in seconds.")

let request_timeout_arg =
  Arg.(
    value & opt (some float) (Some 30000.)
    & info [ "request-timeout" ] ~docv:"MS"
        ~doc:
          "Per-request wall deadline in supervised mode: a worker that \
           has not answered within $(docv) milliseconds is killed and \
           the request retried once.")

let max_inflight_arg =
  Arg.(
    value & opt int 64
    & info [ "max-inflight" ] ~docv:"N"
        ~doc:
          "Admission bound: past $(docv) in-flight checks, new ones \
           are shed immediately with R_overloaded and a Retry-After \
           hint instead of queueing without bound.")

let cache_dir_arg =
  Arg.(
    value & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "Shared result-cache directory for supervised workers: each \
           worker publishes content-addressed segments atomically and \
           loads the others' at startup (safe under concurrent \
           writers).")

let quiet_arg =
  Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"No status output.")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Verbose logging.")

let cmd =
  let doc = "checking-as-a-service daemon for the metal FLASH checkers" in
  Cmd.v
    (Cmd.info "mcheckd" ~doc)
    Term.(
      const main $ socket_arg $ tcp_arg $ drain_arg $ reload_arg $ stats_arg
      $ ping_arg $ metrics_ctl_arg $ flight_ctl_arg $ human_arg $ json_arg
      $ jobs_arg $ cache_arg $ metal_arg $ warm_arg $ strict_arg
      $ unit_fuel_arg $ unit_deadline_arg $ idle_arg $ metrics_addr_arg
      $ access_log_arg $ log_sample_arg $ flight_capacity_arg
      $ flight_threshold_arg $ no_tracing_arg $ workers_arg $ worker_mem_arg
      $ worker_cpu_arg $ request_timeout_arg $ max_inflight_arg
      $ cache_dir_arg $ quiet_arg $ verbose_arg)

let () =
  (* re-exec'd as a supervised worker?  never parse argv — serve the
     socketpair on stdin and exit *)
  Serve.Worker.exit_if_worker ();
  exit (Cmd.eval' cmd)
