(** mcheck — run the metal checkers over FLASH-style protocol code.

    Usage:
    - [mcheck] — run every checker on the builtin synthetic corpus and
      print per-protocol results;
    - [mcheck --table N] — regenerate a table from the paper (1–7);
    - [mcheck --checker NAME FILE.c ...] — run one checker on source
      files;
    - [mcheck --metal FILE.metal FILE.c ...] — compile a checker written
      in the paper's metal syntax and run it (metal/ has Figures 2 and 3
      verbatim);
    - [mcheck --fix -o DIR FILE.c ...] — apply the automatic repairs
      (hooks, races, leaks) and write the patched sources;
    - [mcheck --server ADDR FILE.c ...] — send the check to a running
      [mcheckd] daemon instead of running the pipeline in-process; the
      printed diagnostics and the exit code are byte-identical to the
      local run, but a warm daemon answers without cold-start cost;
    - [mcheck --list] — list the available checkers.

    All local modes run on one {!Mcheck_api.Session} — the same facade
    the daemon serves — so CLI and service behaviour cannot drift.

    Scheduling: [--jobs N] runs the checkers on the [Mcd] work pool
    across N domains, and [--incremental] keeps the content-hash result
    cache warm across invocations (persisted to [--cache FILE]), so
    re-checking after editing one handler only re-runs the affected
    function-batched units.  Output is byte-identical to the sequential
    run in every configuration.

    Observability: [--explain] prints each diagnostic's witness path —
    the (location, event, state transition) steps that drove the checker
    to the report; [--trace FILE.json] records the whole pipeline
    (cfront, engine, mcd, cache, sim) as a Chrome trace; [--metrics]
    dumps the merged counter/histogram registry; [--quiet]/[-v] set the
    verbosity of the [Mcobs] log sink that all status lines route
    through. *)

open Cmdliner
module Session = Mcheck_api.Session

(* Status lines that belong on stdout (headers, summaries) are silenced
   by --quiet; log lines go through the Mcobs sink (stderr). *)
let say fmt =
  if Mcobs.get_verbosity () = Mcobs.Quiet then Printf.ifprintf stdout fmt
  else Printf.printf fmt

let list_checkers () =
  List.iter
    (fun (c : Registry.checker) ->
      Printf.printf "%-14s %s\n" c.Registry.name c.Registry.description)
    Registry.all

let with_session config f =
  let session = Session.create ~config () in
  Fun.protect ~finally:(fun () -> Session.close session) (fun () -> f session)

(* -------------------------------------------------------------- *)
(* Local modes: one Session, Mcheck_api does the wiring            *)
(* -------------------------------------------------------------- *)

let run_on_files files ropts config =
  with_session config (fun session ->
      let report = Session.check_files session files in
      Mcheck_api.print_report ropts report;
      Robust.exit_code report.Mcheck_api.r_outcome)

let run_corpus checker_names seed ropts config =
  let corpus = Corpus.generate ~seed () in
  (* corpus mode never force-includes "internal": its per-checker count
     lines list exactly what was asked for *)
  let selected name = checker_names = [] || List.mem name checker_names in
  let print_protocol_results result =
    List.iter
      (fun (name, diags) ->
        if selected name then begin
          say "-- %s: %d report(s)\n" name (List.length diags);
          if ropts.Mcheck_api.ro_verbose || ropts.Mcheck_api.ro_explain then
            List.iter
              (fun d ->
                Format.printf "   %a@."
                  (if ropts.Mcheck_api.ro_explain then Diag.pp_explain
                   else Diag.pp)
                  d)
              diags
        end)
      result
  in
  with_session config (fun session ->
      let results, _report =
        Session.check_jobs session (Mcheck_api.corpus_jobs corpus)
      in
      List.iter2
        (fun (p : Corpus.protocol) result ->
          say "=== %s (%d LOC) ===\n" p.Corpus.name p.Corpus.loc;
          print_protocol_results result)
        corpus.Corpus.protocols results)

let run_table n seed =
  let corpus = Corpus.generate ~seed () in
  let table =
    match n with
    | 1 -> Some (Experiments.table1 corpus)
    | 2 -> Some (Experiments.table2 corpus)
    | 3 -> Some (Experiments.table3 corpus)
    | 4 -> Some (Experiments.table4 corpus)
    | 5 -> Some (Experiments.table5 corpus)
    | 6 -> Some (Experiments.table6 corpus)
    | 7 -> Some (Experiments.table7 corpus)
    | _ -> None
  in
  match table with
  | Some t -> Table.print t
  | None ->
    if n = 0 then
      List.iter
        (fun t ->
          Table.print t;
          print_newline ())
        (Experiments.all corpus)
    else prerr_endline "tables are numbered 1-7 (0 = all)"

let run_metal files ropts seed config =
  with_session config (fun session ->
      match files with
      | [] ->
        (* no files: run over the builtin corpus *)
        let corpus = Corpus.generate ~seed () in
        let total =
          List.fold_left
            (fun acc (p : Corpus.protocol) ->
              say "=== %s ===\n" p.Corpus.name;
              let r =
                Session.check_units session ~spec:p.Corpus.spec p.Corpus.tus
              in
              List.iter
                (fun d -> print_string (Mcheck_api.render_diag ropts d))
                (Mcheck_api.report_diags r);
              acc + r.Mcheck_api.r_findings)
            0 corpus.Corpus.protocols
        in
        if total = 0 then say "no violations found\n"
      | files ->
        let report = Session.check_files session files in
        Mcheck_api.print_report ropts report)

let run_fix files out_dir =
  if files = [] then begin
    prerr_endline "--fix needs source files";
    exit (Robust.exit_code Robust.Unusable)
  end;
  (* patching a partially-parsed source would drop the unparsed regions
     from the output, so --fix always parses strictly *)
  let srcs, _ = Mcheck_api.read_sources ~strict:true files in
  let tus = Mcheck_api.parse_strict srcs in
  let spec = Mcheck_api.default_spec tus in
  let fixed = Fixer.fix_all ~spec tus in
  if not (Sys.file_exists out_dir) then Sys.mkdir out_dir 0o755;
  List.iter
    (fun tu ->
      let path = Filename.concat out_dir (Filename.basename tu.Ast.tu_file) in
      Mcheck_api.write_file path (Pp.tunit_to_string tu);
      say "patched %s\n" path)
    fixed

(* -------------------------------------------------------------- *)
(* --server: same check, but against a running mcheckd             *)
(* -------------------------------------------------------------- *)

(* The daemon renders with the same [Mcheck_api.render_diag] this
   binary uses locally; printing the streamed frames verbatim plus the
   same trailer rule makes local and remote stdout byte-identical. *)
let run_server addr_spec checker_names files ropts ~want_metrics =
  let fail_unusable msg =
    Printf.eprintf "mcheck: %s\n" msg;
    Robust.exit_code Robust.Unusable
  in
  if files = [] then fail_unusable "--server needs FILE arguments"
  else
    match Serve.Proto.parse_addr addr_spec with
    | Error msg -> fail_unusable msg
    | Ok addr -> (
      match Serve.Client.connect addr with
      | Error e -> fail_unusable (Serve.Client.err_to_string e)
      | Ok c ->
        (* the client mints the trace id, so one request is
           attributable end-to-end: grep this id in the daemon's
           access log and flight dump *)
        let trace = Mctel.Trace.mint () in
        let opts =
          {
            Serve.Proto.co_checkers = checker_names;
            co_explain = ropts.Mcheck_api.ro_explain;
            co_verbose = ropts.Mcheck_api.ro_verbose;
            co_quiet = ropts.Mcheck_api.ro_quiet;
            co_strict = false;
            co_trace = trace;
          }
        in
        let r =
          Serve.Client.check_files
            ~on_diag:(fun d -> print_string d.Serve.Proto.d_text)
            c opts files
        in
        if want_metrics then begin
          Printf.eprintf "trace: %s\n" trace;
          match Serve.Client.metrics c Serve.Proto.M_prom with
          | Ok text -> prerr_string text
          | Error e ->
            Printf.eprintf "mcheck: metrics: %s\n"
              (Serve.Client.err_to_string e)
        end;
        Serve.Client.close c;
        (match r with
        | Error e -> fail_unusable (Serve.Client.err_to_string e)
        | Ok (Serve.Client.Refused msg) ->
          Printf.eprintf "mcheck: server refused: %s\n" msg;
          Robust.exit_code Robust.Partial
        | Ok (Serve.Client.Overloaded ms) ->
          Printf.eprintf "mcheck: server overloaded; retry in %dms\n" ms;
          Robust.exit_code Robust.Partial
        | Ok (Serve.Client.Checked res) ->
          if
            res.Serve.Client.cr_findings = 0
            && not ropts.Mcheck_api.ro_quiet
          then print_string "no violations found\n";
          res.Serve.Client.cr_exit))

let main checker_names files table list_flag seed verbose metal_paths
    metal_mode fix out_dir jobs incremental cache_file quiet explain
    trace_file metrics strict unit_fuel unit_deadline server =
  let budget = { Engine.fuel = unit_fuel; deadline_ms = unit_deadline } in
  Mcobs.set_verbosity
    (if quiet then Mcobs.Quiet
     else if verbose then Mcobs.Verbose
     else Mcobs.Normal);
  (* recording a trace or dumping metrics implies tracing on *)
  if trace_file <> None || metrics then Mcobs.set_enabled true;
  let ropts =
    { Mcheck_api.ro_explain = explain; ro_verbose = verbose; ro_quiet = quiet }
  in
  let config checkers metal =
    {
      Mcheck_api.jobs;
      incremental;
      cache_file = (if incremental then Some cache_file else None);
      cache_dir = None;
      budget;
      strict;
      checkers;
      metal;
    }
  in
  let code =
    match
      if list_flag then begin
        list_checkers ();
        0
      end
      else if fix then begin
        run_fix files out_dir;
        0
      end
      else begin
        match (server, table, metal_paths, files) with
        | Some addr, None, [], files ->
          (* the daemon owns scheduling and parse-mode policy; flags
             that would silently not apply are rejected loudly *)
          if strict then begin
            Printf.eprintf
              "mcheck: --strict is a daemon-side setting (start mcheckd \
               --strict)\n";
            Robust.exit_code Robust.Unusable
          end
          else run_server addr checker_names files ropts ~want_metrics:metrics
        | Some _, _, _, _ ->
          Printf.eprintf
            "mcheck: --server runs file checks only (no --table/--metal)\n";
          Robust.exit_code Robust.Unusable
        | None, Some n, _, _ ->
          run_table n seed;
          0
        | None, None, (_ :: _ as metal_paths), files -> (
          match Mcheck_api.load_metal ~mode:metal_mode metal_paths with
          | Error msg ->
            (* a rejected spec makes the whole run meaningless: exit 3,
               with the compiler's located, classified diagnostics *)
            Printf.eprintf "%s\n" msg;
            Robust.exit_code Robust.Unusable
          | Ok metal ->
            run_metal files ropts seed (config checker_names metal);
            0)
        | None, None, [], [] ->
          run_corpus checker_names seed ropts (config checker_names []);
          0
        | None, None, [], files ->
          run_on_files files ropts (config checker_names [])
      end
    with
    | code -> code
    | exception Mcheck_api.Robust_exit outcome -> Robust.exit_code outcome
  in
  (* exporters run after the work so the snapshot covers everything,
     and before the exit so a violation run still writes the trace *)
  (match trace_file with
  | Some path ->
    Mcobs.export_chrome_file path (Mcobs.snapshot ());
    Mcobs.logf Mcobs.Normal "wrote Chrome trace to %s" path
  | None -> ());
  if metrics then
    Format.eprintf "%a@." Mcobs.pp_summary (Mcobs.snapshot ());
  code

let checker_arg =
  Arg.(
    value & opt_all string []
    & info [ "c"; "checker" ] ~docv:"NAME"
        ~doc:"Run only the named checker (repeatable). See --list.")

(* [string], not [file]: missing inputs are our recovery path's job
   (reported and skipped, or fail-fast under --strict), not cmdliner's *)
let files_arg =
  Arg.(
    value & pos_all string [] & info [] ~docv:"FILE" ~doc:"C source files.")

let table_arg =
  Arg.(
    value & opt (some int) None
    & info [ "t"; "table" ] ~docv:"N"
        ~doc:"Regenerate paper table $(docv) (1-7; 0 for all).")

let list_arg =
  Arg.(value & flag & info [ "list" ] ~doc:"List available checkers.")

let seed_arg =
  Arg.(
    value & opt int 0xF1A54
    & info [ "seed" ] ~docv:"SEED" ~doc:"Corpus generation seed.")

let metal_arg =
  Arg.(
    value & opt_all file []
    & info [ "m"; "metal" ] ~docv:"FILE"
        ~doc:"Compile and run a checker written in metal syntax \
              (repeatable).")

let metal_mode_arg =
  Arg.(
    value
    & vflag Mrun.Mode_compiled
        [
          ( Mrun.Mode_compiled,
            info [ "metal-compiled" ]
              ~doc:
                "Run --metal specs compiled to transition tables (the \
                 default)." );
          ( Mrun.Mode_interp,
            info [ "metal-interp" ]
              ~doc:
                "Run --metal specs through the Mdsl interpreter instead \
                 of the compiler — the escape hatch.  Diagnostics are \
                 byte-identical to the compiled path." );
        ])

let verbose_arg =
  Arg.(
    value & flag
    & info [ "v"; "verbose" ] ~doc:"Print every diagnostic (with paths).")

let fix_arg =
  Arg.(
    value & flag
    & info [ "fix" ]
        ~doc:"Apply the automatic repairs (hooks, races, leaks) and write \
              the patched sources to the output directory.")

let out_arg =
  Arg.(
    value & opt string "fixed"
    & info [ "o"; "output" ] ~docv:"DIR" ~doc:"Output directory for --fix.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:"Schedule function-batched work units across $(docv) \
              domains.  Output is identical to the sequential run.")

let incremental_arg =
  Arg.(
    value & flag
    & info [ "incremental" ]
        ~doc:"Cache per-unit results by content hash and persist them \
              (see --cache), so re-checks after small edits only re-run \
              the affected units.")

let cache_arg =
  Arg.(
    value & opt string ".mcheck.cache"
    & info [ "cache" ] ~docv:"FILE"
        ~doc:"Cache file used by --incremental.")

let quiet_arg =
  Arg.(
    value & flag
    & info [ "q"; "quiet" ]
        ~doc:"Print diagnostics only: suppress headers, summaries, and \
              status lines.")

let explain_arg =
  Arg.(
    value & flag
    & info [ "explain" ]
        ~doc:"Print each diagnostic's witness path: the (location, \
              event, state transition) steps that drove the checker's \
              state machine to the report.")

let trace_arg =
  Arg.(
    value & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Record the run as a Chrome trace-event file (open in \
              chrome://tracing or Perfetto).  Covers cfront, engine, \
              mcd scheduler/pool/cache, and the simulator.")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:"Dump the merged Mcobs counter/histogram/span registry \
              after the run.")

let strict_arg =
  Arg.(
    value & flag
    & info [ "strict" ]
        ~doc:"Fail fast on the first unreadable or unparseable input \
              file (exit 3) instead of recovering, reporting, and \
              checking the surviving functions.")

let unit_fuel_arg =
  Arg.(
    value & opt (some int) None
    & info [ "unit-fuel" ] ~docv:"N"
        ~doc:"Per-unit step budget: a checker that visits more than \
              $(docv) (node, state) pairs on one work unit is cut off, \
              reported, and replaced by a degraded flow-insensitive \
              pass.  Only applies with --jobs/--incremental.")

let unit_deadline_arg =
  Arg.(
    value & opt (some float) None
    & info [ "unit-deadline" ] ~docv:"MS"
        ~doc:"Per-unit wall-clock budget in milliseconds; exceeded \
              units are cut off, reported, and degraded like \
              --unit-fuel.  Only applies with --jobs/--incremental.")

let server_arg =
  Arg.(
    value & opt (some string) None
    & info [ "server" ] ~docv:"ADDR"
        ~doc:"Check the files against a running mcheckd daemon at \
              $(docv) (a unix socket path, unix:PATH, or HOST:PORT) \
              instead of in-process.  Diagnostics and exit code are \
              identical to the local run.")

let cmd =
  let doc =
    "metal checkers for FLASH protocol code (ASPLOS 2000 reproduction)"
  in
  Cmd.v
    (Cmd.info "mcheck" ~doc)
    Term.(
      const main $ checker_arg $ files_arg $ table_arg $ list_arg $ seed_arg
      $ verbose_arg $ metal_arg $ metal_mode_arg $ fix_arg $ out_arg
      $ jobs_arg $ incremental_arg $ cache_arg $ quiet_arg $ explain_arg
      $ trace_arg $ metrics_arg $ strict_arg $ unit_fuel_arg
      $ unit_deadline_arg $ server_arg)

let () =
  Serve.Worker.exit_if_worker ();
  exit (Cmd.eval' cmd)
