(** mcheck — run the metal checkers over FLASH-style protocol code.

    Usage:
    - [mcheck] — run every checker on the builtin synthetic corpus and
      print per-protocol results;
    - [mcheck --table N] — regenerate a table from the paper (1–7);
    - [mcheck --checker NAME FILE.c ...] — run one checker on source
      files;
    - [mcheck --metal FILE.metal FILE.c ...] — compile a checker written
      in the paper's metal syntax and run it (metal/ has Figures 2 and 3
      verbatim);
    - [mcheck --fix -o DIR FILE.c ...] — apply the automatic repairs
      (hooks, races, leaks) and write the patched sources;
    - [mcheck --list] — list the available checkers.

    Scheduling: [--jobs N] runs the checkers on the [Mcd] work pool
    across N domains, and [--incremental] keeps the content-hash result
    cache warm across invocations (persisted to [--cache FILE]), so
    re-checking after editing one handler only re-runs the affected
    function-batched units.  Output is byte-identical to the sequential
    run in every configuration.

    Observability: [--explain] prints each diagnostic's witness path —
    the (location, event, state transition) steps that drove the checker
    to the report; [--trace FILE.json] records the whole pipeline
    (cfront, engine, mcd, cache, sim) as a Chrome trace; [--metrics]
    dumps the merged counter/histogram registry; [--quiet]/[-v] set the
    verbosity of the [Mcobs] log sink that all status lines route
    through. *)

open Cmdliner

(* Status lines that belong on stdout (headers, summaries) are silenced
   by --quiet; log lines go through the Mcobs sink (stderr). *)
let say fmt =
  if Mcobs.get_verbosity () = Mcobs.Quiet then Printf.ifprintf stdout fmt
  else Printf.printf fmt

(* How to print one diagnostic: --explain wins, then -v (with path). *)
let pp_diag ~explain ~verbose ppf d =
  if explain then Diag.pp_explain ppf d
  else if verbose then Diag.pp_with_trace ppf d
  else Diag.pp ppf d

let list_checkers () =
  List.iter
    (fun (c : Registry.checker) ->
      Printf.printf "%-14s %s\n" c.Registry.name c.Registry.description)
    Registry.all

let load_metal paths : (string * string Sm.t) list =
  List.map
    (fun path ->
      match Mdsl.load_file path with
      | sm -> (path, sm)
      | exception Mdsl.Parse_error (msg, loc) ->
        (* a broken spec makes the whole run meaningless: exit 3 *)
        if Loc.is_none loc then
          Printf.eprintf "%s: metal parse error: %s\n" path msg
        else
          Printf.eprintf "%s: metal parse error: %s\n" (Loc.to_string loc)
            msg;
        exit (Robust.exit_code Robust.Unusable)
      | exception Sys_error msg ->
        Printf.eprintf "%s: cannot read metal spec: %s\n" path msg;
        exit (Robust.exit_code Robust.Unusable))
    paths

let run_metal_on metal_paths (tus : Ast.tunit list) verbose explain =
  let total = ref 0 in
  List.iter
    (fun (_, sm) ->
      let diags = Engine.check sm (`Program tus) in
      total := !total + List.length diags;
      List.iter
        (fun d -> Format.printf "%a@." (pp_diag ~explain ~verbose) d)
        diags)
    (load_metal metal_paths);
  !total

(* -------------------------------------------------------------- *)
(* Input parsing: recovery by default, --strict restores fail-fast *)
(* -------------------------------------------------------------- *)

(* Read and parse the input files.  By default an unreadable file is
   reported and skipped and parse errors are recovered from (every
   syntactically-intact function is still checked); [--strict] restores
   the old fail-fast behaviour, exiting 3 on the first problem.
   Returns the surviving units, the parse/lex diagnostics (file order),
   and how many files were skipped outright. *)
let parse_files ~strict files : Ast.tunit list * Diag.t list * int =
  let skipped = ref 0 in
  let units =
    List.filter_map
      (fun path ->
        match
          let ic = open_in_bin path in
          Fun.protect
            ~finally:(fun () -> close_in ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        with
        | src -> Some (path, Prelude.text ^ src)
        | exception Sys_error msg ->
          Printf.eprintf "%s: cannot read: %s\n" path msg;
          if strict then exit (Robust.exit_code Robust.Unusable);
          incr skipped;
          None)
      files
  in
  if strict then
    match Frontend.of_strings units with
    | tus -> (tus, [], !skipped)
    | exception Parser.Error (msg, loc) ->
      Printf.eprintf "%s: parse error: %s\n" (Loc.to_string loc) msg;
      exit (Robust.exit_code Robust.Unusable)
    | exception Lexer.Error (msg, loc) ->
      Printf.eprintf "%s: lexical error: %s\n" (Loc.to_string loc) msg;
      exit (Robust.exit_code Robust.Unusable)
  else
    let tus, diags = Frontend.parse_strings units in
    (tus, diags, !skipped)

(* -------------------------------------------------------------- *)
(* Scheduling configuration: --jobs / --incremental / --cache      *)
(* -------------------------------------------------------------- *)

type sched = {
  jobs : int;
  incremental : bool;
  cache_file : string;
  strict : bool;
  budget : Engine.budget;  (** per-unit fuel / deadline under Mcd *)
}

let use_mcd sched = sched.jobs > 1 || sched.incremental

(* In incremental mode the content-hash cache is loaded before and
   persisted after the run, which is what keeps re-checks warm across
   mcheck invocations. *)
let with_cache sched f =
  if sched.incremental then begin
    let cache = Mcd_cache.load sched.cache_file in
    let r = f (Some cache) in
    Mcd_cache.save cache sched.cache_file;
    r
  end
  else f None

(* The default one-line scheduler summary (cache-hit rate, parallel
   efficiency) plus the full per-domain breakdown at -v. *)
let report_sched_stats stats =
  Mcobs.logf Mcobs.Normal "%a" Mcd.pp_stats_line stats;
  Mcobs.logf Mcobs.Verbose "scheduler: %a" Mcd.pp_stats stats

let print_protocol_results ~verbose ~explain ~selected result =
  List.iter
    (fun (name, diags) ->
      if selected name then begin
        say "-- %s: %d report(s)\n" name (List.length diags);
        if verbose || explain then
          List.iter
            (fun d ->
              Format.printf "   %a@."
                (pp_diag ~explain ~verbose:false)
                d)
            diags
      end)
    result

let run_on_files checker_names files verbose explain sched =
  let tus, parse_diags, skipped = parse_files ~strict:sched.strict files in
  let spec =
    (* without a protocol spec, treat every void/no-arg function as a
       hardware handler, which is what xg++'s default tables did *)
    {
      Flash_api.p_name = "<cli>";
      p_handlers =
        List.concat_map
          (fun tu ->
            List.filter_map
              (fun (f : Ast.func) ->
                if Ctype.equal f.Ast.f_ret Ctype.Void && f.Ast.f_params = []
                then
                  Some
                    {
                      Flash_api.h_name = f.Ast.f_name;
                      h_kind = Flash_api.Hw_handler;
                      h_lane_allowance = [| 1; 1; 1; 1 |];
                      h_no_stack = false;
                    }
                else None)
              (Ast.functions tu))
          tus;
      p_free_funcs = [];
      p_use_funcs = [];
      p_cond_free_funcs = [];
    }
  in
  (* containment-layer entries ("internal") are always reported, even
     under -c selection: they say where coverage was lost *)
  let selected name =
    checker_names = [] || List.mem name checker_names
    || String.equal name "internal"
  in
  let per_checker, units_degraded =
    if use_mcd sched then begin
      let result, stats =
        with_cache sched (fun cache ->
            Mcd.check_corpus ?cache ~budget:sched.budget ~jobs:sched.jobs
              ~spec tus)
      in
      report_sched_stats stats;
      ( List.filter (fun (name, _) -> selected name) result,
        stats.Mcd.units_faulted > 0 || stats.Mcd.workers_crashed > 0 )
    end
    else
      (* the fused driver computes every checker over one shared prep
         per function; selection only filters the report *)
      let result = Registry.run_all_fused ~spec tus in
      ( List.filter (fun (name, _) -> selected name) result,
        List.exists
          (fun (name, diags) -> String.equal name "internal" && diags <> [])
          result )
  in
  (* parse/lex diagnostics first (file order), then checker reports *)
  List.iter
    (fun d -> Format.printf "%a@." (pp_diag ~explain ~verbose) d)
    parse_diags;
  let findings = ref 0 in
  List.iter
    (fun (_, diags) ->
      List.iter
        (fun d ->
          if not (Robust.is_internal d) then incr findings;
          Format.printf "%a@." (pp_diag ~explain ~verbose) d)
        diags)
    per_checker;
  if !findings = 0 then say "no violations found\n";
  (* a run where no function survived parsing checked nothing *)
  let survived = List.exists (fun tu -> Ast.functions tu <> []) tus in
  let outcome =
    Robust.classify
      ~usable:(survived || (parse_diags = [] && skipped = 0 && files <> []))
      ~degraded:(parse_diags <> [] || skipped > 0 || units_degraded)
      ~has_findings:(!findings > 0)
  in
  if outcome <> Robust.Clean && outcome <> Robust.Findings then
    Mcobs.logf Mcobs.Normal "mcheck: run was %s (exit %d)"
      (Robust.to_string outcome)
      (Robust.exit_code outcome);
  Robust.exit_code outcome

let run_corpus checker_names seed verbose explain sched =
  let corpus = Corpus.generate ~seed () in
  let selected name =
    checker_names = [] || List.mem name checker_names
  in
  if use_mcd sched then begin
    (* the scheduler always computes every checker (the cache keeps that
       cheap); selection only filters the report *)
    let jobs =
      List.map
        (fun (p : Corpus.protocol) ->
          { Mcd.spec = p.Corpus.spec; tus = p.Corpus.tus })
        corpus.Corpus.protocols
    in
    let results, stats =
      with_cache sched (fun cache ->
          Mcd.check_jobs ?cache ~jobs:sched.jobs jobs)
    in
    List.iter2
      (fun (p : Corpus.protocol) result ->
        say "=== %s (%d LOC) ===\n" p.Corpus.name p.Corpus.loc;
        print_protocol_results ~verbose ~explain ~selected result)
      corpus.Corpus.protocols results;
    report_sched_stats stats
  end
  else
    List.iter
      (fun (p : Corpus.protocol) ->
        say "=== %s (%d LOC) ===\n" p.Corpus.name p.Corpus.loc;
        (* fused: one shared prep per function across all checkers;
           selection only filters the report *)
        print_protocol_results ~verbose ~explain ~selected
          (Registry.run_all_fused ~spec:p.Corpus.spec p.Corpus.tus))
      corpus.Corpus.protocols

let run_table n seed =
  let corpus = Corpus.generate ~seed () in
  let table =
    match n with
    | 1 -> Some (Experiments.table1 corpus)
    | 2 -> Some (Experiments.table2 corpus)
    | 3 -> Some (Experiments.table3 corpus)
    | 4 -> Some (Experiments.table4 corpus)
    | 5 -> Some (Experiments.table5 corpus)
    | 6 -> Some (Experiments.table6 corpus)
    | 7 -> Some (Experiments.table7 corpus)
    | _ -> None
  in
  match table with
  | Some t -> Table.print t
  | None ->
    if n = 0 then
      List.iter
        (fun t ->
          Table.print t;
          print_newline ())
        (Experiments.all corpus)
    else prerr_endline "tables are numbered 1-7 (0 = all)"

let run_metal metal_paths files verbose explain seed ~strict =
  let total =
    match files with
    | [] ->
      (* no files: run over the builtin corpus *)
      let corpus = Corpus.generate ~seed () in
      List.fold_left
        (fun acc (p : Corpus.protocol) ->
          say "=== %s ===\n" p.Corpus.name;
          acc + run_metal_on metal_paths p.Corpus.tus verbose explain)
        0 corpus.Corpus.protocols
    | files ->
      let tus, parse_diags, _skipped = parse_files ~strict files in
      List.iter
        (fun d -> Format.printf "%a@." (pp_diag ~explain ~verbose) d)
        parse_diags;
      run_metal_on metal_paths tus verbose explain
  in
  if total = 0 then say "no violations found\n"

let run_fix files out_dir =
  if files = [] then begin
    prerr_endline "--fix needs source files";
    exit (Robust.exit_code Robust.Unusable)
  end;
  (* patching a partially-parsed source would drop the unparsed regions
     from the output, so --fix always parses strictly *)
  let tus, _, _ = parse_files ~strict:true files in
  (* the CLI's default spec: void/no-arg functions are handlers *)
  let spec =
    {
      Flash_api.p_name = "<cli>";
      p_handlers =
        List.concat_map
          (fun tu ->
            List.filter_map
              (fun (f : Ast.func) ->
                if Ctype.equal f.Ast.f_ret Ctype.Void && f.Ast.f_params = []
                then
                  Some
                    {
                      Flash_api.h_name = f.Ast.f_name;
                      h_kind = Flash_api.Hw_handler;
                      h_lane_allowance = [| 1; 1; 1; 1 |];
                      h_no_stack = false;
                    }
                else None)
              (Ast.functions tu))
          tus;
      p_free_funcs = [];
      p_use_funcs = [];
      p_cond_free_funcs = [];
    }
  in
  let fixed = Fixer.fix_all ~spec tus in
  if not (Sys.file_exists out_dir) then Sys.mkdir out_dir 0o755;
  List.iter
    (fun tu ->
      let path = Filename.concat out_dir (Filename.basename tu.Ast.tu_file) in
      let oc = open_out path in
      output_string oc (Pp.tunit_to_string tu);
      close_out oc;
      say "patched %s\n" path)
    fixed

let main checker_names files table list_flag seed verbose metal_paths fix
    out_dir jobs incremental cache_file quiet explain trace_file metrics
    strict unit_fuel unit_deadline =
  let budget =
    { Engine.fuel = unit_fuel; deadline_ms = unit_deadline }
  in
  let sched = { jobs; incremental; cache_file; strict; budget } in
  Mcobs.set_verbosity
    (if quiet then Mcobs.Quiet
     else if verbose then Mcobs.Verbose
     else Mcobs.Normal);
  (* recording a trace or dumping metrics implies tracing on *)
  if trace_file <> None || metrics then Mcobs.set_enabled true;
  let code =
    if list_flag then begin
      list_checkers ();
      0
    end
    else if fix then begin
      run_fix files out_dir;
      0
    end
    else begin
      match (table, metal_paths, files) with
      | Some n, _, _ ->
        run_table n seed;
        0
      | None, (_ :: _ as metal), files ->
        run_metal metal files verbose explain seed ~strict;
        0
      | None, [], [] ->
        run_corpus checker_names seed verbose explain sched;
        0
      | None, [], files -> run_on_files checker_names files verbose explain sched
    end
  in
  (* exporters run after the work so the snapshot covers everything,
     and before the exit so a violation run still writes the trace *)
  (match trace_file with
  | Some path ->
    Mcobs.export_chrome_file path (Mcobs.snapshot ());
    Mcobs.logf Mcobs.Normal "wrote Chrome trace to %s" path
  | None -> ());
  if metrics then
    Format.eprintf "%a@." Mcobs.pp_summary (Mcobs.snapshot ());
  code

let checker_arg =
  Arg.(
    value & opt_all string []
    & info [ "c"; "checker" ] ~docv:"NAME"
        ~doc:"Run only the named checker (repeatable). See --list.")

(* [string], not [file]: missing inputs are our recovery path's job
   (reported and skipped, or fail-fast under --strict), not cmdliner's *)
let files_arg =
  Arg.(
    value & pos_all string [] & info [] ~docv:"FILE" ~doc:"C source files.")

let table_arg =
  Arg.(
    value & opt (some int) None
    & info [ "t"; "table" ] ~docv:"N"
        ~doc:"Regenerate paper table $(docv) (1-7; 0 for all).")

let list_arg =
  Arg.(value & flag & info [ "list" ] ~doc:"List available checkers.")

let seed_arg =
  Arg.(
    value & opt int 0xF1A54
    & info [ "seed" ] ~docv:"SEED" ~doc:"Corpus generation seed.")

let metal_arg =
  Arg.(
    value & opt_all file []
    & info [ "m"; "metal" ] ~docv:"FILE"
        ~doc:"Compile and run a checker written in metal syntax \
              (repeatable).")

let verbose_arg =
  Arg.(
    value & flag
    & info [ "v"; "verbose" ] ~doc:"Print every diagnostic (with paths).")

let fix_arg =
  Arg.(
    value & flag
    & info [ "fix" ]
        ~doc:"Apply the automatic repairs (hooks, races, leaks) and write \
              the patched sources to the output directory.")

let out_arg =
  Arg.(
    value & opt string "fixed"
    & info [ "o"; "output" ] ~docv:"DIR" ~doc:"Output directory for --fix.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:"Schedule function-batched work units across $(docv) \
              domains.  Output is identical to the sequential run.")

let incremental_arg =
  Arg.(
    value & flag
    & info [ "incremental" ]
        ~doc:"Cache per-unit results by content hash and persist them \
              (see --cache), so re-checks after small edits only re-run \
              the affected units.")

let cache_arg =
  Arg.(
    value & opt string ".mcheck.cache"
    & info [ "cache" ] ~docv:"FILE"
        ~doc:"Cache file used by --incremental.")

let quiet_arg =
  Arg.(
    value & flag
    & info [ "q"; "quiet" ]
        ~doc:"Print diagnostics only: suppress headers, summaries, and \
              status lines.")

let explain_arg =
  Arg.(
    value & flag
    & info [ "explain" ]
        ~doc:"Print each diagnostic's witness path: the (location, \
              event, state transition) steps that drove the checker's \
              state machine to the report.")

let trace_arg =
  Arg.(
    value & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Record the run as a Chrome trace-event file (open in \
              chrome://tracing or Perfetto).  Covers cfront, engine, \
              mcd scheduler/pool/cache, and the simulator.")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:"Dump the merged Mcobs counter/histogram/span registry \
              after the run.")

let strict_arg =
  Arg.(
    value & flag
    & info [ "strict" ]
        ~doc:"Fail fast on the first unreadable or unparseable input \
              file (exit 3) instead of recovering, reporting, and \
              checking the surviving functions.")

let unit_fuel_arg =
  Arg.(
    value & opt (some int) None
    & info [ "unit-fuel" ] ~docv:"N"
        ~doc:"Per-unit step budget: a checker that visits more than \
              $(docv) (node, state) pairs on one work unit is cut off, \
              reported, and replaced by a degraded flow-insensitive \
              pass.  Only applies with --jobs/--incremental.")

let unit_deadline_arg =
  Arg.(
    value & opt (some float) None
    & info [ "unit-deadline" ] ~docv:"MS"
        ~doc:"Per-unit wall-clock budget in milliseconds; exceeded \
              units are cut off, reported, and degraded like \
              --unit-fuel.  Only applies with --jobs/--incremental.")

let cmd =
  let doc =
    "metal checkers for FLASH protocol code (ASPLOS 2000 reproduction)"
  in
  Cmd.v
    (Cmd.info "mcheck" ~doc)
    Term.(
      const main $ checker_arg $ files_arg $ table_arg $ list_arg $ seed_arg
      $ verbose_arg $ metal_arg $ fix_arg $ out_arg $ jobs_arg
      $ incremental_arg $ cache_arg $ quiet_arg $ explain_arg $ trace_arg
      $ metrics_arg $ strict_arg $ unit_fuel_arg $ unit_deadline_arg)

let () = exit (Cmd.eval' cmd)
