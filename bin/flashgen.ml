(** flashgen — write the synthetic FLASH protocol corpus to disk.

    The emitted .c files are what [mcheck] checks; writing them out lets
    you read the protocols, diff seeds, or feed them to other tools. *)

open Cmdliner

let main out_dir seed summary =
  let corpus = Corpus.generate ~seed () in
  Corpus.write_to_dir corpus out_dir;
  Printf.printf "wrote corpus (seed %#x) to %s/\n" seed out_dir;
  if summary then
    List.iter
      (fun (p : Corpus.protocol) ->
        Printf.printf
          "  %-10s %6d LOC  %3d handlers  %d seeded fault site(s)\n"
          p.Corpus.name p.Corpus.loc
          (List.length p.Corpus.spec.Flash_api.p_handlers)
          (List.length p.Corpus.manifest))
      corpus.Corpus.protocols

let out_arg =
  Arg.(
    value & opt string "corpus"
    & info [ "o"; "output" ] ~docv:"DIR" ~doc:"Output directory.")

let seed_arg =
  Arg.(
    value & opt int 0xF1A54
    & info [ "seed" ] ~docv:"SEED" ~doc:"Generation seed.")

let summary_arg =
  Arg.(value & flag & info [ "summary" ] ~doc:"Print per-protocol sizes.")

let cmd =
  Cmd.v
    (Cmd.info "flashgen" ~doc:"generate the synthetic FLASH protocol corpus")
    Term.(const main $ out_arg $ seed_arg $ summary_arg)

let () = exit (Cmd.eval cmd)
