(** flashsim — run the FlashLite-substitute protocol simulator.

    Runs coherence traffic through the golden bitvector protocol (clean or
    buggy variant) and reports runtime faults and data corruptions. *)

open Cmdliner

let main transactions nodes lines seed buggy dir_name =
  let directory =
    match Directory.of_protocol dir_name with
    | Some d -> d
    | None ->
      Printf.eprintf
        "unknown directory %S (try bitvector, coarsevector, dyn_ptr, sci, \
         coma, rac)\n"
        dir_name;
      exit 2
  in
  let cfg =
    {
      Sim.default_config with
      Sim.transactions;
      n_nodes = nodes;
      n_lines = lines;
      seed;
      variant = (if buggy then Golden.Buggy else Golden.Clean);
      directory;
    }
  in
  let result = Sim.run cfg in
  Format.printf "%a@." Sim.pp_result result

let transactions_arg =
  Arg.(
    value & opt int 10_000
    & info [ "n"; "transactions" ] ~docv:"N" ~doc:"Transactions to run.")

let nodes_arg =
  Arg.(value & opt int 4 & info [ "nodes" ] ~docv:"K" ~doc:"Node count.")

let lines_arg =
  Arg.(value & opt int 8 & info [ "lines" ] ~docv:"K" ~doc:"Cache lines.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Workload seed.")

let dir_arg =
  Arg.(
    value & opt string "bitvector"
    & info [ "dir" ] ~docv:"NAME"
        ~doc:"Directory organisation: bitvector, coarsevector, dyn_ptr, \
              sci, coma or rac.")

let buggy_arg =
  Arg.(
    value & flag
    & info [ "buggy" ] ~doc:"Run the variant with the seeded protocol bugs.")

let cmd =
  Cmd.v
    (Cmd.info "flashsim" ~doc:"FlashLite-substitute protocol simulator")
    Term.(
      const main $ transactions_arg $ nodes_arg $ lines_arg $ seed_arg
      $ buggy_arg $ dir_arg)

let () = exit (Cmd.eval cmd)
