(** mcfuzz — randomized differential testing of the checking pipeline.

    Generates seeded random FLASH-style Clite programs, runs them through
    four pipelines that must agree (sequential, Mcd with 2 and 4 domains,
    cold/warm/shared caches, and a printer round trip), and — with
    [--mutate] — seeds paper-style bugs with ground-truth labels and
    scores each checker's recall and precision.

    With [--serve], every clean program additionally runs through a
    live in-process [mcheckd] daemon (warm parallel/incremental
    session) and over the wire back — the sixth oracle: daemon output,
    findings, and exit code must be byte-identical to the local CLI
    path.

    With [--metalc], the three in-tree metal specs run compiled and
    interpreted over the fixed corpus + golden programs and over every
    generated program — the seventh oracle: the two back ends'
    diagnostics must be byte-identical.

    With [--product], the product-automaton driver
    ([Registry.run_all_product]: one fused [Engine.product_scan] walk
    per function) runs against both the fused and the sequential
    drivers over the corpus + golden programs and over every generated
    program — the eighth oracle: all three must be byte-identical.

    With [--supervised], every clean program also runs through a
    daemon that dispatches into supervised worker processes — the
    ninth oracle: the extra process hop, framing relay, and worker-side
    session must not change a byte of output.

    Exit status 1 when any pipeline disagrees, any seeded-bug recall
    drops below the threshold, or a generated program crashes the
    pipeline; 0 otherwise.  Failures print the seed, so
    [mcfuzz --seed N --count 1] reproduces any report. *)

open Cmdliner

let main seed count mutate out quiet threshold serve metalc product
    supervised =
  let t0 = Unix.gettimeofday () in
  let log i =
    if (not quiet) && (i mod 100 = 0 || i = count) then
      Printf.eprintf "mcfuzz: %d/%d programs (%.1fs)\n%!" i count
        (Unix.gettimeofday () -. t0)
  in
  let daemon = if serve then Some (Serve.Serve_oracle.start ()) else None in
  let sup_daemon =
    if supervised then Some (Serve.Serve_oracle.start ~supervised:true ())
    else None
  in
  let mc =
    if not metalc then None
    else
      match Fuzz_metalc.create () with
      | Ok t -> Some t
      | Error e ->
        Printf.eprintf "mcfuzz: %s\n" e;
        exit 2
  in
  (* the fixed-input halves of O7/O8 run once, before the seeded loop *)
  let sweep_failures =
    match mc with
    | Some t ->
      let fs = Fuzz_metalc.sweep t in
      if not quiet then
        Printf.eprintf "mcfuzz: metalc corpus+golden sweep: %d disagreement(s)\n%!"
          (List.length fs);
      fs
    | None -> []
  in
  let sweep_failures =
    if not product then sweep_failures
    else begin
      let fs = Fuzz_product.sweep () in
      if not quiet then
        Printf.eprintf
          "mcfuzz: product corpus+golden sweep: %d disagreement(s)\n%!"
          (List.length fs);
      sweep_failures @ fs
    end
  in
  let extra_oracle p =
    let serve_fs =
      match daemon with Some d -> Serve.Serve_oracle.check d p | None -> []
    in
    let sup_fs =
      match sup_daemon with
      | Some d -> Serve.Serve_oracle.check d p
      | None -> []
    in
    let metal_fs =
      match mc with Some t -> Fuzz_metalc.oracle t p | None -> []
    in
    let product_fs = if product then Fuzz_product.oracle p else [] in
    serve_fs @ sup_fs @ metal_fs @ product_fs
  in
  let { Fuzz_driver.score; failures } =
    Fun.protect
      ~finally:(fun () ->
        Option.iter Serve.Serve_oracle.stop daemon;
        Option.iter Serve.Serve_oracle.stop sup_daemon)
      (fun () ->
        Fuzz_driver.run ~log ~extra_oracle ~base_seed:seed ~count ~mutate ())
  in
  let failures = sweep_failures @ failures in
  List.iter
    (fun f -> Format.eprintf "FAIL %a@." Fuzz_oracle.pp_failure f)
    failures;
  print_string (Fuzz_score.table score);
  (match out with
  | Some path ->
    Fuzz_score.write_json score path;
    Printf.printf "wrote %s\n" path
  | None -> ());
  let recall = Fuzz_score.overall_recall score in
  if failures <> [] then begin
    Printf.eprintf "mcfuzz: %d oracle disagreement(s)\n" (List.length failures);
    exit 1
  end;
  if mutate && recall < threshold then begin
    Printf.eprintf "mcfuzz: recall %.1f%% below threshold %.1f%%\n"
      (100. *. recall) (100. *. threshold);
    exit 1
  end

let seed_arg =
  Arg.(
    value & opt int 1
    & info [ "seed" ] ~docv:"SEED" ~doc:"Base seed; program $(i,i) uses SEED+i.")

let count_arg =
  Arg.(
    value & opt int 100
    & info [ "count" ] ~docv:"N" ~doc:"Number of programs to generate.")

let mutate_arg =
  Arg.(
    value & flag
    & info [ "mutate" ]
        ~doc:"Also seed every applicable bug mutation per program and \
              score per-checker recall/precision.")

let out_arg =
  Arg.(
    value & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write a JSON report.")

let quiet_arg = Arg.(value & flag & info [ "quiet" ] ~doc:"No progress output.")

let threshold_arg =
  Arg.(
    value & opt float 0.9
    & info [ "recall-threshold" ] ~docv:"R"
        ~doc:"Fail when overall recall drops below R (with --mutate).")

let serve_arg =
  Arg.(
    value & flag
    & info [ "serve" ]
        ~doc:"Also run every clean program through a live in-process \
              mcheckd daemon and require its wire output, findings, and \
              exit code to match the local CLI path byte-for-byte.")

let metalc_arg =
  Arg.(
    value & flag
    & info [ "metalc" ]
        ~doc:"Also run the three in-tree metal specs compiled and \
              interpreted — over the fixed corpus and golden programs \
              once, then over every generated program — and require \
              the two back ends' diagnostics to match byte-for-byte.")

let product_arg =
  Arg.(
    value & flag
    & info [ "product" ]
        ~doc:"Also run the product-automaton driver against the fused \
              and sequential drivers — over the fixed corpus and golden \
              programs once, then over every generated program — and \
              require the three drivers' diagnostics to match \
              byte-for-byte.")

let supervised_arg =
  Arg.(
    value & flag
    & info [ "supervised" ]
        ~doc:"Also run every clean program through a daemon that \
              dispatches checks into supervised worker processes and \
              require the wire output, findings, and exit code to match \
              the local CLI path byte-for-byte.")

let cmd =
  Cmd.v
    (Cmd.info "mcfuzz"
       ~doc:"differential fuzzing of the FLASH checking pipeline")
    Term.(
      const main $ seed_arg $ count_arg $ mutate_arg $ out_arg $ quiet_arg
      $ threshold_arg $ serve_arg $ metalc_arg $ product_arg
      $ supervised_arg)

let () =
  Serve.Worker.exit_if_worker ();
  exit (Cmd.eval cmd)
