/* The Section 11 lesson, as a five-line checker.
 *
 * "A few lines above the diagnosed error, the buffer's reference count
 *  had been manually double-incremented (for no apparent reason) using a
 *  function that was 'never' used. ... After this incident, we added a
 *  check in the extension that aggressively objects to occurrences of
 *  this call."
 */
sm refcount_check {
  all:
    { DB_INC_REFCOUNT(); } ==>
      { err("manual reference-count manipulation blinds the buffer checker"); }
  ;
}
