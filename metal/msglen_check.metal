/* The paper's Figure 3, verbatim: catch inconsistencies between a
 * message send's has-data parameter and the header's length field.
 *
 * Run with:  mcheck --metal metal/msglen_check.metal your_protocol.c
 */
{ #include "flash-includes.h" }
sm msglen_check {
  /* Named patterns specifying message length assignments
   * zero and non-zero values. */
  pat zero_assign =
    { HANDLER_GLOBALS(header.nh.len) = LEN_NODATA } ;
  pat nonzero_assign =
    { HANDLER_GLOBALS(header.nh.len) = LEN_WORD }
  | { HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE } ;

  /* Named patterns specifying sends that transmit data
   * (these need a non-zero length field). */
  decl { unsigned } keep, swap, wait, dec, null, type;
  pat send_data =
    { PI_SEND(F_DATA, keep, swap, wait, dec, null) }
  | { IO_SEND(F_DATA, keep, swap, wait, dec, null) }
  | { NI_SEND(type, F_DATA, keep, wait, dec, null) } ;

  /* Named patterns for sends without data
   * (these need a zero length field). */
  pat send_nodata =
    { PI_SEND(F_NODATA, keep, swap, wait, dec, null) }
  | { IO_SEND(F_NODATA, keep, swap, wait, dec, null) }
  | { NI_SEND(type, F_NODATA, keep, wait, dec, null) } ;

  /* Start state. Note, rules in the special 'all'
   * state are always run no matter what state the
   * SM is in. We assume sends in this state are
   * ok and ignore them. */
  all:
    zero_assign ==> zero_len
  | nonzero_assign ==> nonzero_len ;

  /* If we have a zero-length, cannot send data */
  zero_len:
    send_data ==> { err("data send, zero len"); } ;

  /* If we have a non-zero length, must send data */
  nonzero_len:
    send_nodata ==> { err("nodata send, nonzero len"); } ;
}
