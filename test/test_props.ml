(** qcheck properties for the annotation-suppression mechanism and the
    call-graph builder.

    Suppress (Section 6.1): an annotation that matches a warning must
    silence exactly that warning — never a diagnostic elsewhere — and an
    annotation that matches nothing must be scored unused without hiding
    anything.  Callgraph: the edge set is a property of the program, not
    of declaration order. *)

let t = Alcotest.test_case

(* ------------------------------------------------------------------ *)
(* Suppress                                                            *)
(* ------------------------------------------------------------------ *)

let two_handler_spec =
  {
    Flash_api.p_name = "props";
    p_handlers =
      [
        {
          Flash_api.h_name = "H";
          h_kind = Flash_api.Hw_handler;
          h_lane_allowance = [| 1; 1; 1; 1 |];
          h_no_stack = false;
        };
        {
          Flash_api.h_name = "D";
          h_kind = Flash_api.Hw_handler;
          h_lane_allowance = [| 1; 1; 1; 1 |];
          h_no_stack = false;
        };
      ];
    p_free_funcs = [];
    p_use_funcs = [];
    p_cond_free_funcs = [];
  }

(* H leaks its buffer (no FREE_DB on any path) unless annotated; D
   double-frees no matter what.  [a]/[b] vary the padding so the paths
   differ run to run. *)
let leaky_program ~annot a b =
  Printf.sprintf
    "void H(void) { HANDLER_DEFS(); SIM_HANDLER_HOOK(); long v; v = %d; if \
     (v > %d) { v = v + 1; } %s}\n\
     void D(void) { HANDLER_DEFS(); SIM_HANDLER_HOOK(); long w; w = %d; \
     FREE_DB(); FREE_DB(); }\n"
    a b
    (if annot then "no_free_needed(); " else "")
    (a + b)

let outcome_of src =
  let tus = Frontend.of_strings [ ("p.c", Prelude.text ^ src) ] in
  Buffer_mgmt.run_with_annotations ~spec:two_handler_spec tus

let diags_in func (o : Buffer_mgmt.outcome) =
  List.filter (fun d -> String.equal d.Diag.func func) o.Buffer_mgmt.diags
  |> List.map Diag.key

let prop_matching_annotation_suppresses =
  QCheck.Test.make
    ~name:"no_free_needed silences the leak it matches and nothing else"
    ~count:60
    QCheck.(pair small_nat small_nat)
    (fun (a, b) ->
      let plain = outcome_of (leaky_program ~annot:false a b) in
      let annotated = outcome_of (leaky_program ~annot:true a b) in
      (* the un-annotated leak is real *)
      diags_in "H" plain <> []
      (* suppressed diagnostic is never reported *)
      && diags_in "H" annotated = []
      (* a suppression in H never hides D's double free *)
      && diags_in "D" plain <> []
      && diags_in "D" annotated = diags_in "D" plain
      (* and the annotation is scored useful, not unused *)
      && annotated.Buffer_mgmt.useful_annotations = 1
      && annotated.Buffer_mgmt.unused_annotations = 0)

(* has_buffer() while the checker already believes the buffer is held
   matches nothing: it must change no verdict and be scored unused. *)
let clean_program ~annot a =
  Printf.sprintf
    "void H(void) { HANDLER_DEFS(); SIM_HANDLER_HOOK(); long v; v = %d; %sv \
     = v + 1; FREE_DB(); }\n\
     void D(void) { HANDLER_DEFS(); SIM_HANDLER_HOOK(); FREE_DB(); \
     FREE_DB(); }\n"
    a
    (if annot then "has_buffer(); " else "")

let prop_non_matching_annotation_never_hides =
  QCheck.Test.make
    ~name:"a non-matching has_buffer hides nothing and is scored unused"
    ~count:60 QCheck.small_nat
    (fun a ->
      let plain = outcome_of (clean_program ~annot:false a) in
      let annotated = outcome_of (clean_program ~annot:true a) in
      diags_in "H" annotated = diags_in "H" plain
      && diags_in "D" annotated = diags_in "D" plain
      && annotated.Buffer_mgmt.useful_annotations = 0
      && annotated.Buffer_mgmt.unused_annotations = 1)

(* ------------------------------------------------------------------ *)
(* Callgraph                                                           *)
(* ------------------------------------------------------------------ *)

let edge_set tus =
  let cg = Callgraph.build tus in
  Callgraph.functions cg
  |> List.concat_map (fun (f : Ast.func) ->
         List.map
           (fun (cs : Callgraph.call_site) ->
             (f.Ast.f_name, cs.Callgraph.cs_callee))
           (Callgraph.callees cg f.Ast.f_name))
  |> List.sort compare

let shuffle_globals seed (tu : Ast.tunit) =
  let rng = Rng.create ~seed in
  let a = Array.of_list tu.Ast.tu_globals in
  for i = Array.length a - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  { tu with Ast.tu_globals = Array.to_list a }

let prop_callgraph_order_invariant =
  QCheck.Test.make
    ~name:"callgraph edge set is invariant under global reordering" ~count:40
    QCheck.(pair (int_bound 100_000) (int_bound 100_000))
    (fun (seed, perm_seed) ->
      let p = Fuzz_gen.generate ~seed () in
      let tus = p.Fuzz_gen.tus in
      let shuffled = List.map (shuffle_globals perm_seed) tus in
      let roots =
        List.map
          (fun (h : Flash_api.handler_spec) -> h.Flash_api.h_name)
          p.Fuzz_gen.spec.Flash_api.p_handlers
      in
      let reach ts =
        List.sort String.compare (Callgraph.reachable_from (Callgraph.build ts) roots)
      in
      edge_set shuffled = edge_set tus && reach shuffled = reach tus)

(* ------------------------------------------------------------------ *)
(* Symbol interning                                                    *)
(* ------------------------------------------------------------------ *)

(* A physically fresh copy of [s]: equal contents, distinct block, so
   any accidental reliance on pointer identity in the interner or the
   matcher shows up. *)
let fresh s = String.init (String.length s) (String.get s)

let prop_symtab_roundtrip =
  QCheck.Test.make
    ~name:"symtab: intern/name round-trip, id uniqueness, canon sharing"
    ~count:200
    QCheck.(pair string string)
    (fun (s1, s2) ->
      let id1 = Symtab.intern s1 in
      let id2 = Symtab.intern s2 in
      (* name is the exact spelling interned *)
      String.equal (Symtab.name id1) s1
      (* a fresh physical copy maps to the same id *)
      && Symtab.intern (fresh s1) = id1
      (* ids are equal exactly when spellings are *)
      && String.equal s1 s2 = (id1 = id2)
      (* canon returns one shared block regardless of which copy asks *)
      && Symtab.canon s1 == Symtab.canon (fresh s1)
      (* find sees what intern published *)
      && Symtab.find s1 = Some id1)

(* Interned matching must be observationally identical to the old
   string-compare semantics: matching an event against a physically
   fresh deep copy (every string re-allocated) yields the same verdict
   and the same bindings.  The events come from fuzz-generated handler
   code flattened by the same [Prep] pass the engine replays. *)
let rec copy_expr (e : Ast.expr) : Ast.expr =
  let edesc =
    match e.Ast.edesc with
    | Ast.Int_lit (v, sp) -> Ast.Int_lit (v, fresh sp)
    | Ast.Float_lit (v, sp) -> Ast.Float_lit (v, fresh sp)
    | Ast.Str_lit s -> Ast.Str_lit (fresh s)
    | Ast.Char_lit c -> Ast.Char_lit c
    | Ast.Ident s -> Ast.Ident (fresh s)
    | Ast.Call (f, args) -> Ast.Call (copy_expr f, List.map copy_expr args)
    | Ast.Unop (op, a) -> Ast.Unop (op, copy_expr a)
    | Ast.Binop (op, a, b) -> Ast.Binop (op, copy_expr a, copy_expr b)
    | Ast.Assign (a, b) -> Ast.Assign (copy_expr a, copy_expr b)
    | Ast.Op_assign (op, a, b) -> Ast.Op_assign (op, copy_expr a, copy_expr b)
    | Ast.Cond (a, b, c) -> Ast.Cond (copy_expr a, copy_expr b, copy_expr c)
    | Ast.Cast (t, a) -> Ast.Cast (t, copy_expr a)
    | Ast.Field (a, f) -> Ast.Field (copy_expr a, fresh f)
    | Ast.Arrow (a, f) -> Ast.Arrow (copy_expr a, fresh f)
    | Ast.Index (a, b) -> Ast.Index (copy_expr a, copy_expr b)
    | Ast.Comma (a, b) -> Ast.Comma (copy_expr a, copy_expr b)
    | Ast.Sizeof_expr a -> Ast.Sizeof_expr (copy_expr a)
    | Ast.Sizeof_type t -> Ast.Sizeof_type t
  in
  { e with Ast.edesc }

let match_patterns =
  lazy
    [
      Pattern.expr "FREE_DB()";
      Pattern.expr ~decls:[ ("addr", Pattern.Any) ] "WAIT_FOR_DB_FULL(addr)";
      Pattern.expr ~decls:[ ("x", Pattern.Any); ("y", Pattern.Any) ] "x = y";
      Pattern.call "SIM_HANDLER_HOOK" ~arity:0;
    ]

let same_binding b1 b2 =
  let n1 = List.sort String.compare (Binding.names b1) in
  let n2 = List.sort String.compare (Binding.names b2) in
  n1 = n2
  && List.for_all
       (fun n ->
         match (Binding.find b1 n, Binding.find b2 n) with
         | Some e1, Some e2 ->
           String.equal (Pp.expr_to_string e1) (Pp.expr_to_string e2)
         | None, None -> true
         | _ -> false)
       n1

let prop_interned_matching_string_semantics =
  QCheck.Test.make
    ~name:"interned matching = string-compare matching on fresh copies"
    ~count:30
    QCheck.(int_bound 100_000)
    (fun seed ->
      let p = Fuzz_gen.generate ~seed () in
      let funcs =
        List.concat_map
          (fun (tu : Ast.tunit) ->
            List.filter_map
              (function Ast.Gfunc f -> Some f | _ -> None)
              tu.Ast.tu_globals)
          p.Fuzz_gen.tus
      in
      List.for_all
        (fun f ->
          let prep = Prep.build f in
          let events = Prep.events prep ~observe_branches:true in
          Array.for_all
            (fun evs ->
              Array.for_all
                (fun e ->
                  let e' = copy_expr e in
                  List.for_all
                    (fun pat ->
                      match
                        (Pattern.match_expr pat e, Pattern.match_expr pat e')
                      with
                      | None, None -> true
                      | Some b, Some b' -> same_binding b b'
                      | _ -> false)
                    (Lazy.force match_patterns))
                evs)
            events)
        funcs)

let suite =
  ( "props",
    [
      QCheck_alcotest.to_alcotest prop_matching_annotation_suppresses;
      QCheck_alcotest.to_alcotest prop_non_matching_annotation_never_hides;
      QCheck_alcotest.to_alcotest prop_callgraph_order_invariant;
      QCheck_alcotest.to_alcotest prop_symtab_roundtrip;
      QCheck_alcotest.to_alcotest prop_interned_matching_string_semantics;
    ] )
