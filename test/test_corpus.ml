(** Corpus integration tests: generation is deterministic, the protocols
    parse and have the paper's shape, every seeded fault is found and
    nothing else is reported. *)

let t = Alcotest.test_case

(* generating twice is expensive; share one corpus across the suite *)
let corpus = lazy (Corpus.generate ())
let corpus2 = lazy (Corpus.generate ())

let protocol name = Option.get (Corpus.find (Lazy.force corpus) name)

let generation_cases =
  [
    t "six protocols generated" `Quick (fun () ->
        Alcotest.(check int) "count" 6
          (List.length (Lazy.force corpus).Corpus.protocols));
    t "generation is deterministic" `Slow (fun () ->
        List.iter2
          (fun (a : Corpus.protocol) (b : Corpus.protocol) ->
            Alcotest.(check string) "name" a.Corpus.name b.Corpus.name;
            List.iter2
              (fun (fa, sa) (fb, sb) ->
                Alcotest.(check string) "file name" fa fb;
                Alcotest.(check bool)
                  (Printf.sprintf "%s content identical" fa)
                  true (String.equal sa sb))
              a.Corpus.files b.Corpus.files)
          (Lazy.force corpus).Corpus.protocols
          (Lazy.force corpus2).Corpus.protocols);
    t "different seeds differ" `Slow (fun () ->
        let other = Corpus.generate ~seed:123 () in
        let a = Option.get (Corpus.find (Lazy.force corpus) "bitvector") in
        let b = Option.get (Corpus.find other "bitvector") in
        Alcotest.(check bool) "contents differ" false
          (String.equal (snd (List.hd a.Corpus.files))
             (snd (List.hd b.Corpus.files))));
    t "routine counts match the paper exactly" `Quick (fun () ->
        List.iter
          (fun (name, expected) ->
            let p = protocol name in
            let routines =
              List.fold_left
                (fun acc tu -> acc + List.length (Ast.functions tu))
                0 p.Corpus.tus
            in
            Alcotest.(check int) (name ^ " routines") expected routines)
          [
            ("bitvector", 168); ("dyn_ptr", 227); ("sci", 214);
            ("coma", 193); ("rac", 200); ("common", 62);
          ]);
    t "LOC lands in the paper's ballpark" `Quick (fun () ->
        List.iter
          (fun (name, (paper_loc, _, _, _)) ->
            let p = protocol name in
            let ratio = float_of_int p.Corpus.loc /. float_of_int paper_loc in
            Alcotest.(check bool)
              (Printf.sprintf "%s LOC ratio %.2f in [0.6, 1.5]" name ratio)
              true
              (ratio > 0.6 && ratio < 1.5))
          Paper_data.table1);
    t "every handler in the spec exists in the source" `Quick (fun () ->
        List.iter
          (fun (p : Corpus.protocol) ->
            List.iter
              (fun (h : Flash_api.handler_spec) ->
                let found =
                  List.exists
                    (fun tu -> Ast.find_function tu h.Flash_api.h_name <> None)
                    p.Corpus.tus
                in
                Alcotest.(check bool)
                  (p.Corpus.name ^ ": " ^ h.Flash_api.h_name ^ " defined")
                  true found)
              p.Corpus.spec.Flash_api.p_handlers)
          (Lazy.force corpus).Corpus.protocols);
    t "every manifest function exists in the source" `Quick (fun () ->
        List.iter
          (fun (p : Corpus.protocol) ->
            List.iter
              (fun (e : Manifest.entry) ->
                let found =
                  List.exists
                    (fun tu -> Ast.find_function tu e.Manifest.func <> None)
                    p.Corpus.tus
                in
                Alcotest.(check bool)
                  (p.Corpus.name ^ ": " ^ e.Manifest.func ^ " exists")
                  true found)
              p.Corpus.manifest)
          (Lazy.force corpus).Corpus.protocols);
  ]

(* the central integration test: every checker's output classifies
   exactly against the seeded manifest *)
let checker_vs_manifest_cases =
  List.concat_map
    (fun pname ->
      List.map
        (fun (c : Registry.checker) ->
          t
            (Printf.sprintf "%s/%s matches the manifest" pname
               c.Registry.name)
            `Slow
            (fun () ->
              let p = protocol pname in
              let diags = c.Registry.run ~spec:p.Corpus.spec p.Corpus.tus in
              let bugs = ref 0 and minors = ref 0 and fps = ref 0 in
              List.iter
                (fun (d : Diag.t) ->
                  match
                    Manifest.classify p.Corpus.manifest
                      ~checker:c.Registry.name ~protocol:pname
                      ~func:d.Diag.func
                  with
                  | Some e -> (
                    match e.Manifest.kind with
                    | Manifest.Bug -> incr bugs
                    | Manifest.Minor -> incr minors
                    | Manifest.False_positive -> incr fps)
                  | None ->
                    Alcotest.failf "unseeded diagnostic: %s"
                      (Diag.to_string d))
                diags;
              let eb, em, ef =
                Manifest.expected_counts p.Corpus.manifest
                  ~checker:c.Registry.name ~protocol:pname
              in
              Alcotest.(check int) "bugs" eb !bugs;
              Alcotest.(check int) "minor" em !minors;
              Alcotest.(check int) "false positives" ef !fps))
        Registry.all)
    [ "bitvector"; "dyn_ptr"; "sci"; "coma"; "rac"; "common" ]

let totals_cases =
  [
    t "grand totals are the paper's 34 errors and 69 FPs" `Slow (fun () ->
        let bugs = ref 0 and fps = ref 0 in
        List.iter
          (fun (p : Corpus.protocol) ->
            List.iter
              (fun (c : Registry.checker) ->
                let diags =
                  c.Registry.run ~spec:p.Corpus.spec p.Corpus.tus
                in
                List.iter
                  (fun (d : Diag.t) ->
                    match
                      Manifest.classify p.Corpus.manifest
                        ~checker:c.Registry.name ~protocol:p.Corpus.name
                        ~func:d.Diag.func
                    with
                    | Some { Manifest.kind = Manifest.Bug; _ }
                      when c.Registry.name <> "exec_restrict" ->
                      incr bugs
                    | Some { Manifest.kind = Manifest.False_positive; _ } ->
                      incr fps
                    | _ -> ())
                  diags)
              Registry.all)
          (Lazy.force corpus).Corpus.protocols;
        Alcotest.(check int) "errors" 34 !bugs;
        Alcotest.(check int) "false positives" 69 !fps);
    t "annotation usefulness matches Table 4" `Slow (fun () ->
        List.iter
          (fun (name, (_, _, useful, _)) ->
            let p = protocol name in
            let outcome =
              Buffer_mgmt.run_with_annotations ~spec:p.Corpus.spec
                p.Corpus.tus
            in
            Alcotest.(check int)
              (name ^ " useful annotations")
              useful outcome.Buffer_mgmt.useful_annotations)
          Paper_data.table4);
    t "applied counts for Table 2 are exact" `Slow (fun () ->
        List.iter
          (fun (name, (_, _, applied)) ->
            let p = protocol name in
            Alcotest.(check int) (name ^ " reads") applied
              (Buffer_race.applied p.Corpus.tus))
          Paper_data.table2);
  ]

let suite =
  ( "corpus",
    generation_cases @ checker_vs_manifest_cases @ totals_cases )

(* the seeded faults are found at any generation seed: the reproduction is
   not an artifact of one lucky seed *)
let seed_robustness_cases =
  [
    Alcotest.test_case "manifest counts hold at another seed" `Slow
      (fun () ->
        let other = Corpus.generate ~seed:987_654 () in
        List.iter
          (fun (p : Corpus.protocol) ->
            List.iter
              (fun (c : Registry.checker) ->
                let diags = c.Registry.run ~spec:p.Corpus.spec p.Corpus.tus in
                let found = ref 0 in
                List.iter
                  (fun (d : Diag.t) ->
                    match
                      Manifest.classify p.Corpus.manifest
                        ~checker:c.Registry.name ~protocol:p.Corpus.name
                        ~func:d.Diag.func
                    with
                    | Some _ -> incr found
                    | None ->
                      Alcotest.failf "unseeded diagnostic at seed 987654: %s"
                        (Diag.to_string d))
                  diags;
                let eb, em, ef =
                  Manifest.expected_counts p.Corpus.manifest
                    ~checker:c.Registry.name ~protocol:p.Corpus.name
                in
                Alcotest.(check int)
                  (Printf.sprintf "%s/%s total reports" p.Corpus.name
                     c.Registry.name)
                  (eb + em + ef) !found)
              Registry.all)
          other.Corpus.protocols);
  ]

let suite =
  let name, cases0 = suite in
  (name, cases0 @ seed_robustness_cases)

(* the speculative-NAK pruning works at every seeded Dir_spec_nak site:
   those handlers must produce zero directory diagnostics *)
let pruning_cases =
  [
    Alcotest.test_case "every Dir_spec_nak site is pruned" `Slow (fun () ->
        List.iter
          (fun (p : Corpus.protocol) ->
            let nak_handlers =
              List.filter_map
                (fun (name, bug) ->
                  if bug = Skeletons.Dir_spec_nak then Some name else None)
                p.Corpus.config.Profile.bugs
            in
            if nak_handlers <> [] then begin
              let diags = Dir_entry.run ~spec:p.Corpus.spec p.Corpus.tus in
              List.iter
                (fun h ->
                  Alcotest.(check bool)
                    (Printf.sprintf "%s/%s silent" p.Corpus.name h)
                    false
                    (List.exists
                       (fun (d : Diag.t) -> String.equal d.Diag.func h)
                       diags))
                nak_handlers
            end)
          (Lazy.force corpus).Corpus.protocols);
  ]

let suite =
  let name, cases0 = suite in
  (name, cases0 @ pruning_cases)
