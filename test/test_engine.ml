(** Path-sensitive engine tests: per-path state, stop, all-rules, branch
    refinement, exit hooks, and termination on loops. *)

let t = Alcotest.test_case

let func_of src =
  let tu = Frontend.of_string ~file:"t.c" src in
  match Ast.functions tu with
  | [ f ] -> f
  | _ -> Alcotest.fail "expected one function"

(* a tiny two-state machine: open() ... close(); close twice errs *)
type oc = Closed | Open

let oc_sm : oc Sm.t =
  Sm.make ~name:"oc"
    ~start:(fun _ -> Some Closed)
    ~rules:(function
      | Closed ->
        [
          Sm.goto_rule (Pattern.expr "open_it()") Open;
          Sm.err_rule ~checker:"oc" (Pattern.expr "close_it()")
            "close without open";
        ]
      | Open -> [ Sm.goto_rule (Pattern.expr "close_it()") Closed ])
    ()

let run sm ?at_exit src = Engine.check ?at_exit sm (`Func (func_of src))

let cases =
  [
    t "ok sequence is quiet" `Quick (fun () ->
        Alcotest.(check int) "diags" 0
          (List.length (run oc_sm "void f(void) { open_it(); close_it(); }")));
    t "violation on one path only" `Quick (fun () ->
        let diags =
          run oc_sm
            "void f(void) { if (c) { open_it(); } close_it(); }"
        in
        Alcotest.(check int) "one diag" 1 (List.length diags));
    t "stop abandons the path" `Quick (fun () ->
        let stop_sm : oc Sm.t =
          Sm.make ~name:"stop"
            ~start:(fun _ -> Some Closed)
            ~rules:(function
              | Closed ->
                [
                  Sm.stop_rule (Pattern.expr "give_up()");
                  Sm.err_rule ~checker:"stop" (Pattern.expr "bad()") "bad";
                ]
              | Open -> [])
            ()
        in
        let diags =
          run stop_sm "void f(void) { give_up(); bad(); }"
        in
        Alcotest.(check int) "suppressed after stop" 0 (List.length diags));
    t "all-state rules fire in every state" `Quick (fun () ->
        let sm : oc Sm.t =
          Sm.make ~name:"all"
            ~start:(fun _ -> Some Closed)
            ~all:
              [
                Sm.rule (Pattern.expr "anywhere()") (fun ctx ->
                    Sm.err ~checker:"all" ctx "seen";
                    Sm.Stay);
              ]
            ~rules:(function
              | Closed -> [ Sm.goto_rule (Pattern.expr "open_it()") Open ]
              | Open -> [])
            ()
        in
        let diags =
          run sm "void f(void) { anywhere(); open_it(); anywhere(); }"
        in
        Alcotest.(check int) "both hits" 2 (List.length diags));
    t "state rules take precedence over all rules" `Quick (fun () ->
        let order = ref [] in
        let sm : oc Sm.t =
          Sm.make ~name:"prec"
            ~start:(fun _ -> Some Closed)
            ~all:
              [
                Sm.rule (Pattern.expr "evt()") (fun _ ->
                    order := "all" :: !order;
                    Sm.Stay);
              ]
            ~rules:(function
              | Closed ->
                [
                  Sm.rule (Pattern.expr "evt()") (fun _ ->
                      order := "state" :: !order;
                      Sm.Stay);
                ]
              | Open -> [])
            ()
        in
        ignore (run sm "void f(void) { evt(); }");
        Alcotest.(check (list string)) "only the state rule" [ "state" ]
          !order);
    t "terminates on loops" `Quick (fun () ->
        let diags =
          run oc_sm
            "void f(void) { while (c) { open_it(); close_it(); } }"
        in
        Alcotest.(check int) "no diags, no hang" 0 (List.length diags));
    t "loop that flips state is explored per state" `Quick (fun () ->
        (* opening inside a loop without closing: second iteration sees
           Open; memoisation still terminates *)
        let diags =
          run oc_sm "void f(void) { while (c) { close_it(); open_it(); } }"
        in
        (* first iteration: close in Closed state -> one error site *)
        Alcotest.(check int) "one site" 1 (List.length diags));
    t "at_exit sees the final state per path" `Quick (fun () ->
        let at_exit ctx (st : oc) =
          if st = Open then Sm.err ~checker:"oc" ctx "left open"
        in
        let diags =
          run oc_sm ~at_exit
            "void f(void) { open_it(); if (c) { close_it(); } }"
        in
        Alcotest.(check int) "leak on one path" 1 (List.length diags));
    t "branch hook refines by direction" `Quick (fun () ->
        let sm : oc Sm.t =
          Sm.make ~name:"br"
            ~start:(fun _ -> Some Closed)
            ~rules:(fun _ -> [])
            ~branch:(fun st cond dir ->
              match Ast.callee_name cond with
              | Some "became_open" -> if dir then Open else st
              | _ -> st)
            ()
        in
        let at_exit ctx (st : oc) =
          if st = Open then Sm.err ~checker:"br" ctx "open at exit"
        in
        (* deliberately via the deprecated [Engine.run] alias: it must
           stay equivalent to [Engine.check sm (`Func f)] *)
        let diags =
          Engine.run ~at_exit sm
            (func_of "void f(void) { if (became_open()) { x = 1; } }")
        in
        Alcotest.(check int) "true branch flagged once" 1
          (List.length diags));
    t "events inside conditions are seen" `Quick (fun () ->
        let diags =
          run oc_sm "void f(void) { if (close_it()) { x = 1; } }"
        in
        Alcotest.(check int) "close in condition caught" 1
          (List.length diags));
    t "start=None skips the function" `Quick (fun () ->
        let sm : oc Sm.t =
          Sm.make ~name:"skip"
            ~start:(fun f -> if f.Ast.f_name = "f" then None else Some Closed)
            ~rules:(fun _ ->
              [ Sm.err_rule ~checker:"skip" (Pattern.expr "x()") "hit" ])
            ()
        in
        Alcotest.(check int) "skipped" 0
          (List.length (run sm "void f(void) { x(); }")));
    t "trace leads from entry to the error" `Quick (fun () ->
        let diags =
          run oc_sm "void f(void) { a = 1; b = 2; close_it(); }"
        in
        match diags with
        | [ d ] ->
          Alcotest.(check bool) "trace non-empty" true (d.Diag.trace <> [])
        | _ -> Alcotest.fail "expected exactly one diagnostic");
    t "diagnostics are deduplicated per site" `Quick (fun () ->
        (* the same close() is reachable along 4 paths; one report *)
        let diags =
          run oc_sm
            "void f(void) { if (a) { x = 1; } if (b) { y = 1; } close_it(); }"
        in
        Alcotest.(check int) "one site" 1 (List.length diags));
    t "engine stats count visits" `Quick (fun () ->
        let stats = Engine.fresh_stats () in
        ignore
          (Engine.check ~stats oc_sm
             (`Func (func_of "void f(void) { open_it(); close_it(); }")));
        Alcotest.(check bool) "visited nodes" true
          (!stats.Engine.nodes_visited > 0);
        Alcotest.(check bool) "matched events" true
          (!stats.Engine.events_matched >= 2));
  ]

let suite = ("engine", cases)
