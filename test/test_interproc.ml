(** Inter-procedural summary framework tests, using a simple send-counting
    domain (a one-lane version of the lanes checker's). *)

let t = Alcotest.test_case

module Count = struct
  type t = { sum : int; peak : int }

  let zero = { sum = 0; peak = min_int }
  let seq a b = { sum = a.sum + b.sum; peak = max a.peak (a.sum + b.peak) }
  let join a b = { sum = max a.sum b.sum; peak = max a.peak b.peak }
  let equal a b = a.sum = b.sum && a.peak = b.peak
  let loop_safe t = t.sum <= 0
  let pp ppf t = Format.fprintf ppf "(sum=%d,peak=%d)" t.sum t.peak
end

module Client = struct
  module D = Count

  let event (_ : Ast.func) (node : Cfg.node) : Count.t =
    let c = ref Count.zero in
    let on e =
      Ast.iter_expr
        (fun e ->
          match Ast.callee_name e with
          | Some "send" -> c := Count.seq !c { Count.sum = 1; peak = 1 }
          | Some "wait_space" ->
            c := Count.seq !c { Count.sum = -1; peak = -1 }
          | _ -> ())
        e
    in
    (match node.Cfg.kind with
    | Cfg.Stmt { Ast.sdesc = Ast.Sexpr e; _ }
    | Cfg.Branch e | Cfg.Switch e
    | Cfg.Return (Some e) ->
      on e
    | _ -> ());
    !c
end

module A = Interproc.Make (Client)

let summarize src root =
  let tus = [ Frontend.of_string ~file:"t.c" src ] in
  let cg = Callgraph.build tus in
  let ctx = A.create cg in
  (ctx, A.summarize ctx root)

let peak s = (Option.get s).A.effect_.Count.peak

let cases =
  [
    t "straight-line counts" `Quick (fun () ->
        let _, s = summarize "void h(void) { send(); send(); }" "h" in
        Alcotest.(check int) "peak" 2 (peak s));
    t "branches take the max" `Quick (fun () ->
        let _, s =
          summarize
            "void h(void) { if (c) { send(); send(); } else { send(); } }"
            "h"
        in
        Alcotest.(check int) "peak" 2 (peak s));
    t "calls splice in the callee" `Quick (fun () ->
        let _, s =
          summarize
            "void helper(void) { send(); }\n\
             void h(void) { send(); helper(); }"
            "h"
        in
        Alcotest.(check int) "peak" 2 (peak s));
    t "calls through two levels" `Quick (fun () ->
        let _, s =
          summarize
            "void a(void) { send(); }\n\
             void b(void) { a(); a(); }\n\
             void h(void) { b(); }"
            "h"
        in
        Alcotest.(check int) "peak" 2 (peak s));
    t "space check resets the burst" `Quick (fun () ->
        let _, s =
          summarize "void h(void) { send(); wait_space(); send(); }" "h"
        in
        Alcotest.(check int) "peak" 1 (peak s));
    t "loop without sends is a fixed point" `Quick (fun () ->
        let ctx, s =
          summarize "void h(void) { while (c) { x = x + 1; } send(); }" "h"
        in
        Alcotest.(check int) "peak" 1 (peak s);
        Alcotest.(check int) "no loop warnings" 0
          (List.length (A.effectful_loops ctx)));
    t "loop with covered sends is a fixed point" `Quick (fun () ->
        let ctx, s =
          summarize
            "void h(void) { while (c) { wait_space(); send(); } }" "h"
        in
        ignore s;
        Alcotest.(check int) "no loop warnings" 0
          (List.length (A.effectful_loops ctx)));
    t "loop with bare sends is flagged" `Quick (fun () ->
        let ctx, _ =
          summarize "void h(void) { while (c) { send(); } }" "h" in
        Alcotest.(check bool) "warned" true (A.effectful_loops ctx <> []));
    t "recursion is detected" `Quick (fun () ->
        let ctx, _ =
          summarize
            "void h(void) { if (c) { h(); } send(); }" "h"
        in
        Alcotest.(check bool) "cycle seen" true (A.cycles ctx <> []));
    t "witness records the sites" `Quick (fun () ->
        let _, s =
          summarize "void h(void) { send(); wait_space(); send(); }" "h"
        in
        Alcotest.(check bool) "witness non-empty" true
          ((Option.get s).A.witness <> []));
    t "unknown root returns None" `Quick (fun () ->
        let _, s = summarize "void h(void) { }" "nope" in
        Alcotest.(check bool) "none" true (s = None));
  ]

let suite = ("interproc", cases)
