(** The Mcobs observability layer: span nesting discipline across
    domains, exporter output validity, counter-merge algebra, and the
    --explain witness paths. *)

let t = Alcotest.test_case

(* Every test restores the enable flag so the rest of the suite sees
   whatever OBS_TRACE asked for. *)
let with_tracing f =
  let was = Mcobs.enabled () in
  Mcobs.set_enabled true;
  Mcobs.reset ();
  Fun.protect ~finally:(fun () -> Mcobs.set_enabled was) f

(* ------------------------------------------------------------------ *)
(* span nesting well-formedness                                        *)
(* ------------------------------------------------------------------ *)

(* Each domain records a small recursive span tree; afterwards, within
   any one trace track (tid), every pair of spans must be either nested
   or disjoint, and each span's recorded depth must match the number of
   spans that strictly contain it. *)

(* spin until the shared clock visibly advances, so every span has a
   non-zero duration and a begin time distinct from its parent's —
   without this, zero-length sibling spans at the same microsecond are
   indistinguishable from nesting *)
let spin_us us =
  let t0 = Mcobs.now_us () in
  while Mcobs.now_us () -. t0 < us do
    Domain.cpu_relax ()
  done

let rec nest d =
  Mcobs.with_span (Printf.sprintf "lvl%d" d) (fun () ->
      spin_us 1.0;
      if d > 0 then begin
        nest (d - 1);
        nest (d - 1)
      end;
      spin_us 1.0)

let span_workload () =
  for _ = 1 to 3 do
    nest 3
  done

let contains a b =
  (* [a] contains [b] (endpoints may touch) *)
  a.Mcobs.sp_begin_us <= b.Mcobs.sp_begin_us
  && b.sp_begin_us +. b.sp_dur_us <= a.sp_begin_us +. a.sp_dur_us

let disjoint a b =
  a.Mcobs.sp_begin_us +. a.sp_dur_us <= b.Mcobs.sp_begin_us
  || b.sp_begin_us +. b.sp_dur_us <= a.sp_begin_us

let check_track tid spans =
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b ->
          if i < j then
            Alcotest.(check bool)
              (Printf.sprintf "tid %d: %s/%s nested or disjoint" tid
                 a.Mcobs.sp_name b.Mcobs.sp_name)
              true
              (contains a b || contains b a || disjoint a b))
        spans)
    spans;
  List.iter
    (fun s ->
      let enclosing =
        List.length
          (List.filter (fun o -> o != s && contains o s) spans)
      in
      Alcotest.(check int)
        (Printf.sprintf "tid %d: depth of %s" tid s.Mcobs.sp_name)
        enclosing s.Mcobs.sp_depth)
    spans

let check_nesting domains () =
  with_tracing (fun () ->
      let workers =
        List.init (domains - 1) (fun _ -> Domain.spawn span_workload)
      in
      span_workload ();
      List.iter Domain.join workers;
      let snap = Mcobs.snapshot () in
      Alcotest.(check int) "nothing dropped" 0 snap.Mcobs.dropped_spans;
      (* 15 spans per nest 3, 3 nests per workload, one per domain *)
      Alcotest.(check int) "span count" (45 * domains)
        (List.length snap.Mcobs.spans);
      let tids =
        List.sort_uniq compare
          (List.map (fun s -> s.Mcobs.sp_tid) snap.Mcobs.spans)
      in
      Alcotest.(check int) "one track per domain" domains
        (List.length tids);
      List.iter
        (fun tid ->
          check_track tid
            (List.filter
               (fun s -> s.Mcobs.sp_tid = tid)
               snap.Mcobs.spans))
        tids)

let nesting_cases =
  [
    t "span nesting, 1 domain" `Quick (check_nesting 1);
    t "span nesting, 2 domains" `Quick (check_nesting 2);
    t "span nesting, 4 domains" `Quick (check_nesting 4);
    t "disabled recording is a no-op" `Quick (fun () ->
        let was = Mcobs.enabled () in
        Mcobs.set_enabled false;
        Mcobs.reset ();
        Fun.protect
          ~finally:(fun () -> Mcobs.set_enabled was)
          (fun () ->
            let r = Mcobs.with_span "ghost" (fun () -> 41 + 1) in
            Mcobs.count "ghost";
            Mcobs.observe "ghost" 1.0;
            Alcotest.(check int) "thunk value" 42 r;
            let snap = Mcobs.snapshot () in
            Alcotest.(check int) "no spans" 0
              (List.length snap.Mcobs.spans);
            Alcotest.(check int) "no counters" 0
              (List.length snap.Mcobs.counters);
            Alcotest.(check int) "no hists" 0
              (List.length snap.Mcobs.hists)));
  ]

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export: a minimal JSON reader                    *)
(* ------------------------------------------------------------------ *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at %d" msg !pos)) in
  let peek () = if !pos < n then s.[!pos] else '\255' in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | ' ' | '\t' | '\n' | '\r' ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () = c then advance ()
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    String.iter expect word;
    v
  in
  let string_body () =
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (match peek () with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 't' -> Buffer.add_char buf '\t'
        | 'r' -> Buffer.add_char buf '\r'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
          advance ();
          for _ = 1 to 3 do
            advance ()
          done;
          Buffer.add_char buf '?'
        | _ -> fail "bad escape");
        advance ();
        go ()
      | '\255' -> fail "unterminated string"
      | c when Char.code c < 0x20 -> fail "raw control char in string"
      | c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let number () =
    let start = !pos in
    let numchar c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while numchar (peek ()) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | '{' ->
      advance ();
      skip_ws ();
      if peek () = '}' then begin
        advance ();
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          expect '"';
          let k = string_body () in
          skip_ws ();
          expect ':';
          let v = value () in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | ',' ->
            advance ();
            members ()
          | '}' -> advance ()
          | _ -> fail "expected , or }"
        in
        members ();
        Obj (List.rev !fields)
      end
    | '[' ->
      advance ();
      skip_ws ();
      if peek () = ']' then begin
        advance ();
        Arr []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | ',' ->
            advance ();
            elements ()
          | ']' -> advance ()
          | _ -> fail "expected , or ]"
        in
        elements ();
        Arr (List.rev !items)
      end
    | '"' ->
      advance ();
      Str (string_body ())
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | _ -> number ()
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing input";
  v

let field name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

(* exercise the escaper: args with quotes, backslashes, newlines, and
   control characters must still produce valid JSON *)
let nasty_args =
  [
    ("quote", {|say "hi"|});
    ("backslash", {|C:\flash\ni.c|});
    ("newline", "a\nb");
    ("control", "bell\007end");
  ]

let chrome_snapshot () =
  Mcobs.with_span ~args:nasty_args "outer" (fun () ->
      Mcobs.with_span "inner" (fun () -> Mcobs.count ~by:3 "widgets"));
  Mcobs.count "widgets";
  Mcobs.observe "latency" 0.5;
  Mcobs.snapshot ()

let check_chrome_export () =
  with_tracing (fun () ->
      let snap = chrome_snapshot () in
      let path = Filename.temp_file "mcobs" ".json" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Mcobs.export_chrome_file path snap;
          let doc =
            match parse_json (read_file path) with
            | doc -> doc
            | exception Bad_json msg -> Alcotest.fail ("invalid JSON: " ^ msg)
          in
          let events =
            match field "traceEvents" doc with
            | Some (Arr es) -> es
            | _ -> Alcotest.fail "missing traceEvents array"
          in
          Alcotest.(check bool) "has events" true (events <> []);
          List.iter
            (fun e ->
              let str_field k =
                match field k e with
                | Some (Str s) -> s
                | _ -> Alcotest.fail (k ^ " missing or not a string")
              in
              let num_field k =
                match field k e with
                | Some (Num f) -> f
                | _ -> Alcotest.fail (k ^ " missing or not a number")
              in
              ignore (str_field "name");
              ignore (num_field "ts");
              ignore (num_field "pid");
              ignore (num_field "tid");
              match str_field "ph" with
              | "X" -> ignore (num_field "dur")
              | "C" -> ()
              | ph -> Alcotest.fail ("unexpected phase " ^ ph))
            events;
          let span_named name =
            List.exists
              (fun e ->
                field "name" e = Some (Str name)
                && field "ph" e = Some (Str "X"))
              events
          in
          Alcotest.(check bool) "outer span present" true
            (span_named "outer");
          Alcotest.(check bool) "inner span present" true
            (span_named "inner");
          Alcotest.(check bool) "counter event present" true
            (List.exists
               (fun e -> field "ph" e = Some (Str "C"))
               events);
          (* the nasty args survived the escaper *)
          let outer =
            List.find
              (fun e -> field "name" e = Some (Str "outer"))
              events
          in
          match field "args" outer with
          | Some (Obj _ as args) ->
            Alcotest.(check bool) "quote arg intact" true
              (field "quote" args = Some (Str {|say "hi"|}))
          | _ -> Alcotest.fail "outer span lost its args"))

let exporter_cases =
  [
    t "chrome export is valid JSON with the right shape" `Quick
      check_chrome_export;
    t "jsonl export: every line parses" `Quick (fun () ->
        with_tracing (fun () ->
            let snap = chrome_snapshot () in
            let path = Filename.temp_file "mcobs" ".jsonl" in
            Fun.protect
              ~finally:(fun () -> Sys.remove path)
              (fun () ->
                Mcobs.export_jsonl_file path snap;
                let lines =
                  String.split_on_char '\n' (read_file path)
                  |> List.filter (fun l -> String.trim l <> "")
                in
                Alcotest.(check bool) "has lines" true (lines <> []);
                List.iter
                  (fun line ->
                    match parse_json line with
                    | Obj _ -> ()
                    | _ -> Alcotest.fail "line is not an object"
                    | exception Bad_json msg ->
                      Alcotest.fail ("invalid JSONL line: " ^ msg))
                  lines)));
  ]

(* ------------------------------------------------------------------ *)
(* counter-merge algebra                                               *)
(* ------------------------------------------------------------------ *)

(* The per-domain snapshot merge folds [merge_counters] pairwise in
   whatever order the registry happens to hold the buffers, so the
   operation must be associative and commutative. *)

let counters_gen =
  QCheck2.Gen.(
    list_size (int_bound 8)
      (pair (oneofl [ "a"; "b"; "c"; "hits"; "misses" ]) (int_bound 1000)))

let rec sorted_by_name = function
  | (a, _) :: ((b, _) :: _ as rest) ->
    String.compare a b <= 0 && sorted_by_name rest
  | _ -> true

let merge_props =
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:200 ~name:"merge_counters associative"
         QCheck2.Gen.(triple counters_gen counters_gen counters_gen)
         (fun (a, b, c) ->
           Mcobs.merge_counters a (Mcobs.merge_counters b c)
           = Mcobs.merge_counters (Mcobs.merge_counters a b) c));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:200 ~name:"merge_counters commutative"
         QCheck2.Gen.(pair counters_gen counters_gen)
         (fun (a, b) ->
           Mcobs.merge_counters a b = Mcobs.merge_counters b a));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:200 ~name:"merge_counters sorted, sums"
         QCheck2.Gen.(pair counters_gen counters_gen)
         (fun (a, b) ->
           let m = Mcobs.merge_counters a b in
           let total l = List.fold_left (fun s (_, v) -> s + v) 0 l in
           sorted_by_name m && total m = total a + total b));
  ]

(* ------------------------------------------------------------------ *)
(* quantile estimation                                                 *)
(* ------------------------------------------------------------------ *)

(* The estimator interpolates inside the bucket holding the target
   rank, so two properties pin it down: it is monotone in [p], and the
   estimate lies inside the bounds of the bucket an independent rank
   computation selects (the overflow bucket's upper bound being the
   recorded max). *)

let observe_all name samples =
  List.iter (fun v -> Mcobs.observe name v) samples

(* the bucket the implementation should land in for quantile [p] of
   [samples], computed from the raw samples rather than the snapshot *)
let reference_bucket_bounds samples p =
  let bounds = Mcobs.hist_bounds_ms in
  let nb = Array.length bounds + 1 in
  let counts = Array.make nb 0 in
  let bucket_of v =
    let rec go i =
      if i >= Array.length bounds then Array.length bounds
      else if v <= bounds.(i) then i
      else go (i + 1)
    in
    go 0
  in
  List.iter (fun v -> counts.(bucket_of v) <- counts.(bucket_of v) + 1) samples;
  let count = List.length samples in
  let max_ms = List.fold_left Float.max 0. samples in
  let target = p *. float_of_int count in
  let rec go i cum =
    if i >= nb then
      (* past every bucket: the implementation answers max_ms *)
      (max_ms, max_ms)
    else
      let cum' = cum + counts.(i) in
      if counts.(i) > 0 && float_of_int cum' >= target then
        let lo = if i = 0 then 0. else bounds.(i - 1) in
        let hi =
          if i < Array.length bounds then bounds.(i)
          else Float.max lo max_ms
        in
        (lo, hi)
      else go (i + 1) cum'
  in
  go 0 0

let samples_gen =
  (* positive latencies spread across the log-scale buckets, overflow
     included *)
  QCheck2.Gen.(
    list_size (int_range 1 40)
      (map (fun x -> 0.001 *. (1.5 ** float_of_int x)) (int_bound 45)))

let quantile_of samples p =
  Mcobs.set_enabled true;
  Mcobs.reset ();
  observe_all "q" samples;
  let snap = Mcobs.snapshot () in
  Mcobs.reset ();
  Mcobs.quantile snap "q" p

let quantile_props =
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:100 ~name:"quantile monotone in p"
         samples_gen
         (fun samples ->
           let ps = [ 0.0; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 1.0 ] in
           Mcobs.set_enabled true;
           Mcobs.reset ();
           observe_all "q" samples;
           let snap = Mcobs.snapshot () in
           Mcobs.reset ();
           let qs =
             List.map
               (fun p ->
                 match Mcobs.quantile snap "q" p with
                 | Some q -> q
                 | None -> QCheck2.Test.fail_report "no estimate")
               ps
           in
           let rec nondecreasing = function
             | a :: (b :: _ as rest) -> a <= b && nondecreasing rest
             | _ -> true
           in
           nondecreasing qs));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:100
         ~name:"quantile bracketed by its rank bucket"
         QCheck2.Gen.(pair samples_gen (float_range 0.0 1.0))
         (fun (samples, p) ->
           match quantile_of samples p with
           | None -> false
           | Some q ->
             let lo, hi = reference_bucket_bounds samples p in
             q >= lo -. 1e-9 && q <= hi +. 1e-9));
  ]

let quantile_cases =
  [
    t "quantile interpolates deterministically" `Quick (fun () ->
        (* one 0.5 ms sample lands in the (0.1, 1.0] bucket; the median
           rank is halfway through it: 0.1 + 0.5 * (1.0 - 0.1) = 0.55 *)
        match quantile_of [ 0.5 ] 0.5 with
        | None -> Alcotest.fail "no estimate"
        | Some q ->
          Alcotest.(check (float 1e-9)) "interpolated median" 0.55 q);
    t "quantile: empty and unknown histograms answer None" `Quick
      (fun () ->
        with_tracing (fun () ->
            let snap = Mcobs.snapshot () in
            Alcotest.(check bool) "unknown name" true
              (Mcobs.quantile snap "nosuch" 0.5 = None);
            Alcotest.(check bool) "empty hist" true
              (Mcobs.quantile_hist
                 { Mcobs.count = 0; sum_ms = 0.; max_ms = 0.; buckets = [||] }
                 0.5
              = None);
            Mcobs.observe "h" 1.0;
            let snap = Mcobs.snapshot () in
            Alcotest.(check bool) "p out of range" true
              (Mcobs.quantile snap "h" 1.5 = None
              && Mcobs.quantile snap "h" (-0.1) = None)));
  ]

(* ------------------------------------------------------------------ *)
(* per-trace span harvest                                              *)
(* ------------------------------------------------------------------ *)

let trace_cases =
  [
    t "drain_trace takes one trace's spans and leaves the rest" `Quick
      (fun () ->
        with_tracing (fun () ->
            Mcobs.with_trace "t-one" (fun () ->
                Mcobs.with_span "traced.outer" (fun () ->
                    (* separate the begin times so the ascending-begin
                       order is deterministic *)
                    spin_us 1.0;
                    Mcobs.with_span "traced.inner" ignore));
            Mcobs.with_span "untraced" ignore;
            Mcobs.count "survivor";
            let harvested = Mcobs.drain_trace "t-one" in
            Alcotest.(check (list string))
              "the trace's spans, ascending begin"
              [ "traced.outer"; "traced.inner" ]
              (List.map (fun sp -> sp.Mcobs.sp_name) harvested);
            List.iter
              (fun sp ->
                Alcotest.(check string) "stamped with the trace" "t-one"
                  sp.Mcobs.sp_trace)
              harvested;
            Alcotest.(check (list string)) "second harvest is empty" []
              (List.map
                 (fun sp -> sp.Mcobs.sp_name)
                 (Mcobs.drain_trace "t-one"));
            let snap = Mcobs.snapshot () in
            Alcotest.(check (list string)) "untraced span survives"
              [ "untraced" ]
              (List.map (fun sp -> sp.Mcobs.sp_name) snap.Mcobs.spans);
            Alcotest.(check bool) "counters untouched" true
              (List.mem_assoc "survivor" snap.Mcobs.counters)));
  ]

(* ------------------------------------------------------------------ *)
(* --explain witness paths                                             *)
(* ------------------------------------------------------------------ *)

let spec_for handlers : Flash_api.spec =
  {
    Flash_api.p_name = "test";
    p_handlers =
      List.map
        (fun name ->
          {
            Flash_api.h_name = name;
            h_kind = Flash_api.Hw_handler;
            h_lane_allowance = [| 1; 1; 1; 1 |];
            h_no_stack = false;
          })
        handlers;
    p_free_funcs = [];
    p_use_funcs = [];
    p_cond_free_funcs = [];
  }

let parse src = Frontend.of_strings [ ("t.c", Prelude.text ^ src) ]

let check_step msg (step : Diag.step) ~event_prefix ~from_state ~to_state =
  let prefix p s =
    String.length s >= String.length p
    && String.equal (String.sub s 0 (String.length p)) p
  in
  Alcotest.(check bool)
    (msg ^ ": event " ^ step.Diag.w_event)
    true
    (prefix event_prefix step.Diag.w_event);
  Alcotest.(check string) (msg ^ ": from") from_state step.Diag.w_from;
  Alcotest.(check string) (msg ^ ": to") to_state step.Diag.w_to

let witness_cases =
  [
    t "send_wait witness names the transitions in order" `Quick (fun () ->
        let tus =
          parse "void H(void) { PI_SEND(F_NODATA, 0, 0, W_WAIT, 1, 0); }"
        in
        let diags = Send_wait.run ~spec:(spec_for [ "H" ]) tus in
        Alcotest.(check int) "one diagnostic" 1 (List.length diags);
        let d = List.hd diags in
        Alcotest.(check int) "two witness steps" 2
          (List.length d.Diag.witness);
        (match d.Diag.witness with
        | [ send; ret ] ->
          check_step "step 1" send ~event_prefix:"PI_SEND("
            ~from_state:"idle" ~to_state:"waiting_PI";
          check_step "step 2" ret ~event_prefix:"return"
            ~from_state:"waiting_PI" ~to_state:"waiting_PI"
        | _ -> Alcotest.fail "witness shape");
        (* and the --explain rendering shows both *)
        let rendered = Format.asprintf "%a" Diag.pp_explain d in
        let contains_sub hay needle =
          let nh = String.length hay and nn = String.length needle in
          let rec go i =
            i + nn <= nh
            && (String.equal (String.sub hay i nn) needle || go (i + 1))
          in
          go 0
        in
        Alcotest.(check bool) "rendering mentions witness" true
          (contains_sub rendered "witness");
        Alcotest.(check bool) "rendering shows the send step" true
          (contains_sub rendered "PI_SEND"));
    t "every corpus diagnostic carries a non-empty witness" `Quick
      (fun () ->
        let tus =
          parse
            "void H(void) { FREE_DB(); FREE_DB(); }"
        in
        let diags =
          Buffer_mgmt.run ~spec:(spec_for [ "H" ]) tus
        in
        Alcotest.(check bool) "has diags" true (diags <> []);
        List.iter
          (fun d ->
            Alcotest.(check bool) "witness non-empty" true
              (d.Diag.witness <> []))
          diags);
  ]

let suite =
  ( "obs",
    nesting_cases @ exporter_cases @ merge_props @ quantile_props
    @ quantile_cases @ trace_cases @ witness_cases )
