/* the same pattern with the same effect, twice: a copy-paste slip the
 * interpreter silently tolerates */
sm dup_transition {
  decl { scalar } addr;
  start:
    { FOO(addr); } ==> stop
  | { FOO(addr); } ==> stop ;
}
