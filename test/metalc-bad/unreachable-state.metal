/* 'orphan' has no incoming transition from the start state or 'all':
 * its rules can never fire */
sm unreachable_state {
  decl { scalar } addr;
  start:
    { FOO(addr); } ==> stop ;
  orphan:
    { BAR(addr); } ==> stop ;
}
