/* the same state defined twice: the interpreter keeps whichever
 * section it resolves last and silently shadows the other */
sm dup_state {
  decl { scalar } addr;
  start:
    { FOO(addr); } ==> stop ;
  start:
    { BAR(addr); } ==> stop ;
}
