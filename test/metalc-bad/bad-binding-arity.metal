/* a declared wildcard in callee position: the interpreter would bind
 * 'addr' to the callee and match every call in the program */
sm bad_binding {
  decl { scalar } addr, buf;
  start:
    { addr(buf); } ==> stop ;
}
