/* transition to a state that is never defined: the interpreter would
 * silently treat 'missing' as an empty state and stop matching */
sm unknown_state {
  decl { scalar } addr;
  start:
    { FOO(addr); } ==> missing ;
}
