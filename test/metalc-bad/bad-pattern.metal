/* the pattern snippet is not a Clite expression: the compiler must
 * point at the offending token inside the braces, not at the rule */
sm bad_pattern {
  decl { scalar } addr;
  start:
    { FOO(+); } ==> stop ;
}
