/* two rules in one state match the same events with different effects:
 * first-match semantics means the second can never fire */
sm overlapping {
  decl { scalar } addr;
  start:
    { FOO(addr); } ==> next
  | { FOO(addr); } ==> stop ;
  next:
    { BAR(addr); } ==> stop ;
}
