(** Checker behaviour on hand-written snippets: execution restrictions,
    allocation checks, directory entries, send/wait pairing. *)

let t = Alcotest.test_case

let spec_for ?(no_stack = []) ?(sw = []) handlers : Flash_api.spec =
  {
    Flash_api.p_name = "test";
    p_handlers =
      List.map
        (fun name ->
          {
            Flash_api.h_name = name;
            h_kind = Flash_api.Hw_handler;
            h_lane_allowance = [| 1; 1; 1; 1 |];
            h_no_stack = List.mem name no_stack;
          })
        handlers
      @ List.map
          (fun name ->
            {
              Flash_api.h_name = name;
              h_kind = Flash_api.Sw_handler;
              h_lane_allowance = [| 1; 1; 1; 1 |];
              h_no_stack = false;
            })
          sw;
    p_free_funcs = [];
    p_use_funcs = [];
    p_cond_free_funcs = [];
  }

let parse src = Frontend.of_strings [ ("t.c", Prelude.text ^ src) ]

(* ------------------------------------------------------------------ *)
(* execution restrictions                                              *)
(* ------------------------------------------------------------------ *)

let exec ?spec src =
  let spec = match spec with Some s -> s | None -> spec_for [ "H" ] in
  Exec_restrict.run ~spec (parse src)

let n_exec ?spec src = List.length (exec ?spec src)

let good_handler_body = "HANDLER_DEFS();\n  SIM_HANDLER_HOOK();\n  x = 1;"

let exec_cases =
  [
    t "well-formed handler is quiet" `Quick (fun () ->
        Alcotest.(check int) "diags" 0
          (n_exec ("void H(void) { " ^ good_handler_body ^ " }")));
    t "handler with a result errs" `Quick (fun () ->
        Alcotest.(check bool) "flagged" true
          (n_exec ("int H(void) { " ^ good_handler_body ^ " return 0; }") > 0));
    t "handler with parameters errs" `Quick (fun () ->
        Alcotest.(check bool) "flagged" true
          (n_exec ("void H(int a) { " ^ good_handler_body ^ " }") > 0));
    t "integer-only routine passes exec checks" `Quick (fun () ->
        Alcotest.(check int) "diags" 0
          (n_exec "void util(void) { SIM_PROCEDURE_HOOK(); long x; x = x * 2; }"));
    t "deprecated macro warns" `Quick (fun () ->
        Alcotest.(check bool) "flagged" true
          (n_exec
             ("void H(void) { " ^ good_handler_body
            ^ " y = MISCBUS_READ_DB_OLD(0, 0); }")
          > 0));
    t "missing HANDLER_DEFS flagged" `Quick (fun () ->
        Alcotest.(check bool) "flagged" true
          (n_exec "void H(void) { SIM_HANDLER_HOOK(); x = 1; }" > 0));
    t "missing simulator hook flagged" `Quick (fun () ->
        Alcotest.(check bool) "flagged" true
          (n_exec "void H(void) { HANDLER_DEFS(); x = 1; }" > 0));
    t "software handler needs its own hook" `Quick (fun () ->
        let spec = spec_for ~sw:[ "S" ] [] in
        Alcotest.(check bool) "flagged" true
          (n_exec ~spec "void S(void) { HANDLER_DEFS(); SIM_HANDLER_HOOK(); }"
          > 0);
        Alcotest.(check int) "correct hook ok" 0
          (n_exec ~spec
             "void S(void) { HANDLER_DEFS(); SIM_SWHANDLER_HOOK(); }"));
    t "procedure hook required" `Quick (fun () ->
        Alcotest.(check bool) "flagged" true
          (n_exec "void util(void) { x = 1; }" > 0);
        Alcotest.(check int) "with hook ok" 0
          (n_exec "void util(void) { SIM_PROCEDURE_HOOK(); x = 1; }"));
    t "no-stack handler requires the annotation" `Quick (fun () ->
        let spec = spec_for ~no_stack:[ "H" ] [ "H" ] in
        Alcotest.(check bool) "missing NO_STACK flagged" true
          (n_exec ~spec ("void H(void) { " ^ good_handler_body ^ " }") > 0);
        Alcotest.(check int) "with NO_STACK ok" 0
          (n_exec ~spec
             "void H(void) { HANDLER_DEFS(); SIM_HANDLER_HOOK(); NO_STACK(); \
              x = 1; }"));
    t "no-stack handler cannot take addresses" `Quick (fun () ->
        let spec = spec_for ~no_stack:[ "H" ] [ "H" ] in
        Alcotest.(check bool) "flagged" true
          (n_exec ~spec
             "void H(void) { HANDLER_DEFS(); SIM_HANDLER_HOOK(); NO_STACK(); \
              long v; x = &v; }"
          > 0));
    t "no-stack handler cannot declare big aggregates" `Quick (fun () ->
        let spec = spec_for ~no_stack:[ "H" ] [ "H" ] in
        Alcotest.(check bool) "flagged" true
          (n_exec ~spec
             "void H(void) { HANDLER_DEFS(); SIM_HANDLER_HOOK(); NO_STACK(); \
              long big[4]; }"
          > 0));
    t "handler call needs SET_STACKPTR first" `Quick (fun () ->
        let spec = spec_for ~no_stack:[ "H" ] [ "H"; "H2" ] in
        Alcotest.(check bool) "bare call flagged" true
          (n_exec ~spec
             "void H(void) { HANDLER_DEFS(); SIM_HANDLER_HOOK(); NO_STACK(); \
              H2(); }"
          > 0);
        Alcotest.(check bool) "prepared call ok" true
          (n_exec ~spec
             "void H(void) { HANDLER_DEFS(); SIM_HANDLER_HOOK(); NO_STACK(); \
              SET_STACKPTR(); H2(); }"
          = 0));
    t "spurious SET_STACKPTR flagged" `Quick (fun () ->
        let spec = spec_for ~no_stack:[ "H" ] [ "H"; "H2" ] in
        Alcotest.(check bool) "flagged" true
          (n_exec ~spec
             "void H(void) { HANDLER_DEFS(); SIM_HANDLER_HOOK(); NO_STACK(); \
              SET_STACKPTR(); SET_STACKPTR(); H2(); }"
          > 0));
  ]

(* ------------------------------------------------------------------ *)
(* no-float (the paper's separate 7-line checker)                      *)
(* ------------------------------------------------------------------ *)

let nf src =
  List.length (No_float.run ~spec:(spec_for [ "H" ]) (parse src))

let no_float_cases =
  [
    t "floating point literal errs" `Quick (fun () ->
        Alcotest.(check bool) "flagged" true
          (nf "void H(void) { long y; y = y * 1.5; }" > 0));
    t "floating point variable errs" `Quick (fun () ->
        Alcotest.(check bool) "flagged" true
          (nf "void H(void) { double d; }" > 0));
    t "float literal with f suffix errs" `Quick (fun () ->
        Alcotest.(check bool) "flagged" true
          (nf "void util(void) { float f; f = 0.5f; }" > 0));
    t "float parameter errs" `Quick (fun () ->
        Alcotest.(check bool) "flagged" true
          (nf "void util(double x) { }" > 0));
    t "float-typed arithmetic through a variable errs" `Quick (fun () ->
        Alcotest.(check bool) "flagged" true
          (nf "double g; void H(void) { long y; y = g + 1; }" > 0));
    t "integer-only code is quiet" `Quick (fun () ->
        Alcotest.(check int) "diags" 0
          (nf "void H(void) { long x; x = (x << 3) / 7; }"));
  ]

(* ------------------------------------------------------------------ *)
(* allocation check                                                    *)
(* ------------------------------------------------------------------ *)

let alloc src =
  List.length (Alloc_check.run ~spec:(spec_for [ "H" ]) (parse src))

let alloc_cases =
  [
    t "checked allocation is fine" `Quick (fun () ->
        Alcotest.(check int) "diags" 0
          (alloc
             "void H(void) { long b; b = ALLOCATE_DB(); if (ALLOC_FAILED(b)) \
              { return; } MISCBUS_WRITE_DB(b, 0, 1); }"));
    t "write before the check errs" `Quick (fun () ->
        Alcotest.(check int) "diags" 1
          (alloc
             "void H(void) { long b; b = ALLOCATE_DB(); MISCBUS_WRITE_DB(b, \
              0, 1); if (ALLOC_FAILED(b)) { return; } }"));
    t "debug print before the check errs (the dyn_ptr FPs)" `Quick (fun () ->
        Alcotest.(check int) "diags" 1
          (alloc
             "void H(void) { long b; b = ALLOCATE_DB(); DEBUG_PRINT(\"b\", \
              b); if (ALLOC_FAILED(b)) { return; } }"));
    t "checking a different variable does not count" `Quick (fun () ->
        Alcotest.(check int) "diags" 1
          (alloc
             "void H(void) { long b; long c; b = ALLOCATE_DB(); if \
              (ALLOC_FAILED(c)) { return; } MISCBUS_WRITE_DB(b, 0, 1); }"));
    t "uses of other variables are not flagged" `Quick (fun () ->
        Alcotest.(check int) "diags" 0
          (alloc
             "void H(void) { long b; long c; b = ALLOCATE_DB(); \
              MISCBUS_WRITE_DB(c, 0, 1); if (ALLOC_FAILED(b)) { return; } }"));
    t "applied counts allocation sites" `Quick (fun () ->
        Alcotest.(check int) "applied" 2
          (Alloc_check.applied
             (parse
                "void H(void) { long a; long b; a = ALLOCATE_DB(); b = \
                 ALLOCATE_DB(); }")));
  ]

(* ------------------------------------------------------------------ *)
(* directory entries                                                   *)
(* ------------------------------------------------------------------ *)

let dir ?spec src =
  let spec = match spec with Some s -> s | None -> spec_for [ "H" ] in
  List.length (Dir_entry.run ~spec (parse src))

let dir_cases =
  [
    t "load-modify-writeback is fine" `Quick (fun () ->
        Alcotest.(check int) "diags" 0
          (dir
             "void H(void) { long a; LOAD_DIR_ENTRY(DIR_ADDR(a)); \
              HANDLER_GLOBALS(dirEntry.vector) = 1; \
              WRITEBACK_DIR_ENTRY(DIR_ADDR(a)); }"));
    t "modification without writeback errs" `Quick (fun () ->
        Alcotest.(check int) "diags" 1
          (dir
             "void H(void) { long a; LOAD_DIR_ENTRY(DIR_ADDR(a)); \
              HANDLER_GLOBALS(dirEntry.vector) = 1; }"));
    t "read before load errs" `Quick (fun () ->
        Alcotest.(check int) "diags" 1
          (dir "void H(void) { x = HANDLER_GLOBALS(dirEntry.vector); }"));
    t "speculative NAK path is pruned" `Quick (fun () ->
        Alcotest.(check int) "diags" 0
          (dir
             "void H(void) { long a; LOAD_DIR_ENTRY(DIR_ADDR(a)); \
              HANDLER_GLOBALS(dirEntry.pending) = 1; \
              HANDLER_GLOBALS(header.nh.type) = MSG_NAK; NI_SEND(MSG_NAK, \
              F_NODATA, 0, W_NOWAIT, 1, 0); }"));
    t "speculative backout without a NAK is flagged" `Quick (fun () ->
        Alcotest.(check int) "diags" 1
          (dir
             "void H(void) { long a; LOAD_DIR_ENTRY(DIR_ADDR(a)); \
              HANDLER_GLOBALS(dirEntry.pending) = 1; BACKOUT_REQUEST(0); }"));
    t "hand-computed address warns" `Quick (fun () ->
        Alcotest.(check int) "diags" 1
          (dir "void H(void) { long a; LOAD_DIR_ENTRY(a * 8 + 4096); }"));
    t "subroutine modification warns (caller writes back)" `Quick (fun () ->
        Alcotest.(check int) "diags" 1
          (dir
             "void MarkPending(void) { SIM_PROCEDURE_HOOK(); \
              HANDLER_GLOBALS(dirEntry.pending) = 1; }"));
    t "subroutine reads are allowed" `Quick (fun () ->
        Alcotest.(check int) "diags" 0
          (dir
             "void Walk(void) { SIM_PROCEDURE_HOOK(); x = \
              HANDLER_GLOBALS(dirEntry.head); }"));
    t "writeback on the other path only: the bad path errs" `Quick (fun () ->
        Alcotest.(check int) "diags" 1
          (dir
             "void H(void) { long a; LOAD_DIR_ENTRY(DIR_ADDR(a)); \
              HANDLER_GLOBALS(dirEntry.vector) = 1; if (c) { \
              WRITEBACK_DIR_ENTRY(DIR_ADDR(a)); } }"));
    t "op-assign modifications are seen" `Quick (fun () ->
        Alcotest.(check int) "diags" 1
          (dir
             "void H(void) { long a; LOAD_DIR_ENTRY(DIR_ADDR(a)); \
              HANDLER_GLOBALS(dirEntry.vector) |= 4; }"));
  ]

(* ------------------------------------------------------------------ *)
(* send / wait                                                         *)
(* ------------------------------------------------------------------ *)

let sw src =
  List.length (Send_wait.run ~spec:(spec_for [ "H" ]) (parse src))

let sw_cases =
  [
    t "send then wait is fine" `Quick (fun () ->
        Alcotest.(check int) "diags" 0
          (sw
             "void H(void) { PI_SEND(F_NODATA, 0, 0, W_WAIT, 1, 0); \
              WAIT_FOR_PI_REPLY(); }"));
    t "synchronous send never waited errs" `Quick (fun () ->
        Alcotest.(check int) "diags" 1
          (sw "void H(void) { PI_SEND(F_NODATA, 0, 0, W_WAIT, 1, 0); }"));
    t "waiting on the wrong interface errs" `Quick (fun () ->
        Alcotest.(check int) "diags" 1
          (sw
             "void H(void) { PI_SEND(F_NODATA, 0, 0, W_WAIT, 1, 0); \
              WAIT_FOR_IO_REPLY(); }"));
    t "second synchronous send before waiting errs" `Quick (fun () ->
        Alcotest.(check bool) "flagged" true
          (sw
             "void H(void) { PI_SEND(F_NODATA, 0, 0, W_WAIT, 1, 0); \
              IO_SEND(F_NODATA, 0, 0, W_WAIT, 1, 0); WAIT_FOR_PI_REPLY(); \
              WAIT_FOR_IO_REPLY(); }"
          > 0));
    t "asynchronous sends need no wait" `Quick (fun () ->
        Alcotest.(check int) "diags" 0
          (sw "void H(void) { PI_SEND(F_NODATA, 0, 0, W_NOWAIT, 1, 0); }"));
    t "wait missing on one path only" `Quick (fun () ->
        Alcotest.(check int) "diags" 1
          (sw
             "void H(void) { PI_SEND(F_NODATA, 0, 0, W_WAIT, 1, 0); if (c) \
              { WAIT_FOR_PI_REPLY(); } }"));
    t "hand-rolled wait loop is invisible (the abstraction FPs)" `Quick
      (fun () ->
        Alcotest.(check int) "diags" 1
          (sw
             "void H(void) { long v; PI_SEND(F_NODATA, 0, 0, W_WAIT, 1, 0); \
              while (HANDLER_GLOBALS(header.nh.misc) == 0) { v = v + 1; } }"));
    t "IO interface symmetric" `Quick (fun () ->
        Alcotest.(check int) "diags" 0
          (sw
             "void H(void) { IO_SEND(F_NODATA, 0, 0, W_WAIT, 1, 0); \
              WAIT_FOR_IO_REPLY(); }"));
    t "applied counts sends and waits" `Quick (fun () ->
        Alcotest.(check int) "applied" 2
          (Send_wait.applied
             (parse
                "void H(void) { PI_SEND(F_NODATA, 0, 0, W_WAIT, 1, 0); \
                 WAIT_FOR_PI_REPLY(); }")));
  ]

let suite =
  ( "checkers (exec, alloc, dir, send-wait)",
    exec_cases @ no_float_cases @ alloc_cases @ dir_cases @ sw_cases )
