(** Golden-file generator for panic-mode parse recovery: a set of broken
    sources, each printed with its recovery diagnostics (under the
    ["lex"]/["parse"] pseudo-checkers) and the names of the functions
    that survived.  [dune runtest] diffs the output against
    [recover.expected]; intentional recovery changes are reviewed as
    diffs and accepted with [dune promote]. *)

let cases =
  [
    ( "garbage-between-functions",
      "void before(void) { long a; a = 1; }\n\
       void broken(void) { long x; x = @#$ ;;; }\n\
       void after(void) { long b; b = 2; }\n" );
    ( "unclosed-brace",
      "void before(void) { long a; a = 1; }\n\
       void broken(void) { long x; if (x) {\n" );
    ( "truncated-mid-statement",
      "void before(void) { long a; a = 1; }\nvoid broken(void) { long x; x =" );
    ( "unterminated-string",
      "void before(void) { long a; a = 1; }\n\
       void broken(void) { f(\"never closed); }\n\
       void after(void) { long b; b = 2; }\n" );
    ( "bad-toplevel-decl",
      "@@@ not a declaration @@@\nvoid after(void) { long b; b = 2; }\n" );
    ( "two-bad-regions",
      "void a1(void) { long a; a = 1; }\n\
       void bad1(void) { $$$ }\n\
       void a2(void) { long b; b = 2; }\n\
       void bad2(void) { %%% }\n\
       void a3(void) { long c; c = 3; }\n" );
    ("empty-file", "");
    ("only-garbage", "((((( @@@ )))))");
  ]

let () =
  List.iter
    (fun (label, src) ->
      let tus, diags = Frontend.parse_strings [ (label ^ ".c", src) ] in
      Printf.printf "== %s\n" label;
      List.iter
        (fun d -> print_endline ("  " ^ Diag.to_string d))
        (Diag.normalize diags);
      let survivors =
        List.concat_map
          (fun tu ->
            List.map (fun (f : Ast.func) -> f.Ast.f_name) (Ast.functions tu))
          tus
      in
      Printf.printf "  survivors: %s\n"
        (match survivors with
        | [] -> "(none)"
        | fs -> String.concat ", " fs))
    cases
