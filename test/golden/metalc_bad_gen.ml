(** Golden-file generator for the metal compiler's rejection
    diagnostics.  Every spec under [test/metalc-bad/] must be rejected
    by [Mrun.compile] with located, classified errors; the snapshot
    also records what the interpreter does with the same source, which
    documents exactly which silent-tolerance holes the compiler closes
    (unknown goto targets, shadowed duplicate states, wildcard
    callees...).  A second section pins the parse-error locations the
    two front ends report — the rebased line:col inside pattern
    snippets included.  [dune runtest] diffs against
    [metalc_bad.expected]; intentional diagnostic changes are reviewed
    as diffs and accepted with [dune promote]. *)

let dir = "../metalc-bad"

let read path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let () =
  let cases =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".metal")
    |> List.sort String.compare
  in
  List.iter
    (fun f ->
      let src = read (Filename.concat dir f) in
      Printf.printf "== %s\n" f;
      (match Mrun.load ~mode:Mrun.Mode_compiled ~file:f src with
      | Ok _ -> print_endline "  ACCEPTED (expected a rejection)"
      | Error es ->
        List.iter (fun e -> print_endline ("  " ^ Mir.render_error e)) es);
      match Mdsl.load ~file:f src with
      | _sm -> print_endline "  interpreter: accepts silently"
      | exception Mdsl.Parse_error (msg, loc) ->
        Printf.printf "  interpreter: rejects: %s: %s\n" (Loc.to_string loc)
          msg)
    cases

(* parse errors proper: both front ends must report the same located
   failure, including positions rebased into pattern snippets *)
let parse_cases =
  [
    ( "missing-arrow",
      "sm m {\n  decl { scalar } a;\n  start:\n    { FOO(a); } stop ;\n}\n"
    );
    ("unterminated-sm", "sm m {\n  decl { scalar } a;\n");
    ( "bad-snippet-expr",
      "sm m {\n  decl { scalar } a;\n  start:\n    { FOO(a; } ==> stop ;\n}\n"
    );
    ( "bad-decl-kind",
      "sm m {\n  decl { tensor } a;\n  start:\n    { FOO(a); } ==> stop ;\n}\n"
    );
  ]

let () =
  print_endline "== parse-error locations";
  List.iter
    (fun (label, src) ->
      let file = label ^ ".metal" in
      let interp =
        match Mdsl.load ~file src with
        | _sm -> "accepted"
        | exception Mdsl.Parse_error (msg, loc) ->
          Loc.to_string loc ^ ": " ^ msg
      in
      let compiled =
        match Mrun.load ~mode:Mrun.Mode_compiled ~file src with
        | Ok _ -> "accepted"
        | Error es ->
          String.concat "; " (List.map Mir.render_error es)
      in
      Printf.printf "  %-18s interp    %s\n" label interp;
      Printf.printf "  %-18s compiled  %s\n" label compiled)
    parse_cases
