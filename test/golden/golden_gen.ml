(** Golden-file generator: every checker's diagnostics, sorted, over the
    synthetic corpus, both golden-protocol variants, and the paper's
    metal DSL checkers.  [dune runtest] diffs the output against
    [all.expected]; intentional checker changes are reviewed as diffs
    and accepted with [dune promote]. *)

let section name (diags : Diag.t list) =
  let lines = List.sort String.compare (List.map Diag.to_string diags) in
  Printf.printf "== %s (%d)\n" name (List.length lines);
  List.iter print_endline lines

let () =
  let c = Corpus.generate () in
  (* the nine registry checkers over every corpus protocol *)
  List.iter
    (fun (p : Corpus.protocol) ->
      List.iter
        (fun (ck : Registry.checker) ->
          section
            (Printf.sprintf "%s / %s" p.Corpus.name ck.Registry.name)
            (ck.Registry.run ~spec:p.Corpus.spec p.Corpus.tus))
        Registry.all)
    c.Corpus.protocols;
  (* the executable golden protocol, clean and buggy *)
  List.iter
    (fun (variant, label) ->
      let tus = Golden.program variant in
      List.iter
        (fun (ck : Registry.checker) ->
          section
            (Printf.sprintf "%s / %s" label ck.Registry.name)
            (ck.Registry.run ~spec:Golden.spec tus))
        Registry.all)
    [ (Golden.Clean, "golden-clean"); (Golden.Buggy, "golden-buggy") ];
  (* the paper's figures, compiled from metal concrete syntax *)
  List.iter
    (fun file ->
      let sm = Mdsl.load_file (Filename.concat "../../metal" file) in
      List.iter
        (fun (p : Corpus.protocol) ->
          section
            (Printf.sprintf "%s / metal:%s" p.Corpus.name file)
            (Engine.check sm (`Program p.Corpus.tus)))
        c.Corpus.protocols)
    [ "msglen_check.metal"; "refcount.metal"; "wait_for_db.metal" ]
