(** Type-language and type-annotation tests. *)

let t = Alcotest.test_case

let ctype_cases =
  [
    t "sizeof basics" `Quick (fun () ->
        Alcotest.(check int) "char" 1 (Ctype.sizeof Ctype.Char);
        Alcotest.(check int) "int" 4 (Ctype.sizeof Ctype.Int);
        Alcotest.(check int) "double" 8 (Ctype.sizeof Ctype.Double);
        Alcotest.(check int) "ptr" 4 (Ctype.sizeof (Ctype.Ptr Ctype.Long));
        Alcotest.(check int) "array" 16
          (Ctype.sizeof (Ctype.Array (Ctype.Int, Some 4))));
    t "classification" `Quick (fun () ->
        Alcotest.(check bool) "float floating" true
          (Ctype.is_floating Ctype.Float);
        Alcotest.(check bool) "int not floating" false
          (Ctype.is_floating Ctype.Int);
        Alcotest.(check bool) "enum integer" true
          (Ctype.is_integer (Ctype.Enum "e"));
        Alcotest.(check bool) "uint unsigned" true
          (Ctype.is_unsigned Ctype.Uint);
        Alcotest.(check bool) "ptr scalar" true
          (Ctype.is_scalar (Ctype.Ptr Ctype.Void));
        Alcotest.(check bool) "struct not scalar" false
          (Ctype.is_scalar (Ctype.Struct "s")));
    t "join promotes" `Quick (fun () ->
        Alcotest.(check string) "int+double" "double"
          (Ctype.to_string (Ctype.join Ctype.Int Ctype.Double));
        Alcotest.(check string) "char+int" "int"
          (Ctype.to_string (Ctype.join Ctype.Char Ctype.Int));
        Alcotest.(check string) "uint+int" "unsigned"
          (Ctype.to_string (Ctype.join Ctype.Uint Ctype.Int));
        Alcotest.(check string) "long+uint" "unsigned long"
          (Ctype.to_string (Ctype.join Ctype.Long Ctype.Uint)));
    t "equality is structural" `Quick (fun () ->
        Alcotest.(check bool) "ptr equal" true
          (Ctype.equal (Ctype.Ptr Ctype.Int) (Ctype.Ptr Ctype.Int));
        Alcotest.(check bool) "array len matters" false
          (Ctype.equal
             (Ctype.Array (Ctype.Int, Some 2))
             (Ctype.Array (Ctype.Int, Some 3))));
  ]

(* typecheck annotation tests *)
let type_of_expr_in src expr_text =
  let tu =
    Frontend.of_string ~file:"t.c" (src ^ "\nvoid probe(void) { sink = " ^ expr_text ^ "; }")
  in
  let result = ref None in
  List.iter
    (fun (f : Ast.func) ->
      if f.Ast.f_name = "probe" then
        List.iter
          (fun s ->
            Ast.iter_stmt_exprs
              (fun e ->
                match e.Ast.edesc with
                | Ast.Assign (_, rhs) -> result := rhs.Ast.ety
                | _ -> ())
              s)
          f.Ast.f_body)
    (Ast.functions tu);
  match !result with
  | Some ty -> Ctype.to_string ty
  | None -> "<none>"

let typecheck_cases =
  [
    t "int literal" `Quick (fun () ->
        Alcotest.(check string) "42" "int"
          (type_of_expr_in "long sink;" "42"));
    t "float literal" `Quick (fun () ->
        Alcotest.(check string) "1.5" "double"
          (type_of_expr_in "double sink;" "1.5"));
    t "global variable type" `Quick (fun () ->
        Alcotest.(check string) "g" "unsigned long"
          (type_of_expr_in "unsigned long g; long sink;" "g"));
    t "struct field through global" `Quick (fun () ->
        Alcotest.(check string) "h.len" "int"
          (type_of_expr_in
             "struct hdr { int len; }; struct hdr h; long sink;" "h.len"));
    t "typedef resolves" `Quick (fun () ->
        Alcotest.(check string) "u32 var" "unsigned long"
          (type_of_expr_in "typedef unsigned long u32; u32 v; long sink;" "v"));
    t "mixed arithmetic promotes to float" `Quick (fun () ->
        Alcotest.(check string) "i + f" "double"
          (type_of_expr_in "int i; double f; double sink;" "i + f"));
    t "comparison yields int" `Quick (fun () ->
        Alcotest.(check string) "f < g" "int"
          (type_of_expr_in "double f; double g; int sink;" "f < g"));
    t "function return type" `Quick (fun () ->
        Alcotest.(check string) "call" "long"
          (type_of_expr_in "long get(void); long sink;" "get()"));
    t "pointer deref" `Quick (fun () ->
        Alcotest.(check string) "*p" "long"
          (type_of_expr_in "long *p; long sink;" "*p"));
    t "array index" `Quick (fun () ->
        Alcotest.(check string) "a[0]" "int"
          (type_of_expr_in "int a[4]; int sink;" "a[0]"));
    t "locals shadow globals" `Quick (fun () ->
        let tu =
          Frontend.of_string ~file:"t.c"
            "double x;\nvoid f(void) { int x; x = 1; }"
        in
        let found = ref "<none>" in
        List.iter
          (fun (f : Ast.func) ->
            List.iter
              (fun s ->
                Ast.iter_stmt_exprs
                  (fun e ->
                    Ast.iter_expr
                      (fun e ->
                        match (e.Ast.edesc, e.Ast.ety) with
                        | Ast.Ident "x", Some ty ->
                          found := Ctype.to_string ty
                        | _ -> ())
                      e)
                  s)
              f.Ast.f_body)
          (Ast.functions tu);
        Alcotest.(check string) "local type wins" "int" !found);
  ]

let suite = ("ctype+typecheck", ctype_cases @ typecheck_cases)
