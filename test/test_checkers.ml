(** Checker behaviour on hand-written snippets: buffer race, message
    length, buffer management, lanes. *)

let t = Alcotest.test_case

let spec_for ?(free_funcs = []) ?(use_funcs = []) ?(cond_free = [])
    ?(sw = []) ?(allowance = [| 1; 1; 1; 1 |]) handlers : Flash_api.spec =
  {
    Flash_api.p_name = "test";
    p_handlers =
      List.map
        (fun name ->
          {
            Flash_api.h_name = name;
            h_kind = Flash_api.Hw_handler;
            h_lane_allowance = allowance;
            h_no_stack = false;
          })
        handlers
      @ List.map
          (fun name ->
            {
              Flash_api.h_name = name;
              h_kind = Flash_api.Sw_handler;
              h_lane_allowance = allowance;
              h_no_stack = false;
            })
          sw;
    p_free_funcs = free_funcs;
    p_use_funcs = use_funcs;
    p_cond_free_funcs = cond_free;
  }

let parse src = Frontend.of_strings [ ("t.c", Prelude.text ^ src) ]

let count_diags run ?spec src =
  let spec =
    match spec with Some s -> s | None -> spec_for [ "H" ] in
  List.length (run ~spec (parse src))

(* ------------------------------------------------------------------ *)
(* buffer race (Figure 2)                                              *)
(* ------------------------------------------------------------------ *)

let race = count_diags Buffer_race.run

let race_cases =
  [
    t "read after wait is fine" `Quick (fun () ->
        Alcotest.(check int) "diags" 0
          (race
             "void H(void) { long a; WAIT_FOR_DB_FULL(a); a = \
              MISCBUS_READ_DB(a, 0); }"));
    t "read without wait errs" `Quick (fun () ->
        Alcotest.(check int) "diags" 1
          (race "void H(void) { long a; a = MISCBUS_READ_DB(a, 0); }"));
    t "wait on one path only" `Quick (fun () ->
        Alcotest.(check int) "diags" 1
          (race
             "void H(void) { long a; if (a) { WAIT_FOR_DB_FULL(a); } a = \
              MISCBUS_READ_DB(a, 0); }"));
    t "old-style macro also checked" `Quick (fun () ->
        Alcotest.(check int) "diags" 1
          (race "void H(void) { long a; a = MISCBUS_READ_DB_OLD(a, 0); }"));
    t "wait stops checking, later reads quiet" `Quick (fun () ->
        Alcotest.(check int) "diags" 0
          (race
             "void H(void) { long a; WAIT_FOR_DB_FULL(a); a = \
              MISCBUS_READ_DB(a, 0); a = MISCBUS_READ_DB(a, 4); }"));
    t "applied counts read sites" `Quick (fun () ->
        Alcotest.(check int) "applied" 2
          (Buffer_race.applied
             (parse
                "void H(void) { long a; WAIT_FOR_DB_FULL(a); a = \
                 MISCBUS_READ_DB(a, 0) + MISCBUS_READ_DB(a, 4); }")));
  ]

(* ------------------------------------------------------------------ *)
(* message length (Figure 3)                                           *)
(* ------------------------------------------------------------------ *)

let len = count_diags Msg_length.run

let len_cases =
  [
    t "consistent data send" `Quick (fun () ->
        Alcotest.(check int) "diags" 0
          (len
             "void H(void) { HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE; \
              NI_SEND(MSG_PUT, F_DATA, 0, W_NOWAIT, 1, 0); }"));
    t "data send with zero length errs" `Quick (fun () ->
        Alcotest.(check int) "diags" 1
          (len
             "void H(void) { HANDLER_GLOBALS(header.nh.len) = LEN_NODATA; \
              NI_SEND(MSG_PUT, F_DATA, 0, W_NOWAIT, 1, 0); }"));
    t "nodata send with word length errs" `Quick (fun () ->
        Alcotest.(check int) "diags" 1
          (len
             "void H(void) { HANDLER_GLOBALS(header.nh.len) = LEN_WORD; \
              NI_SEND(MSG_NAK, F_NODATA, 0, W_NOWAIT, 1, 0); }"));
    t "no warning before any assignment" `Quick (fun () ->
        (* the published checker starts in 'all' and ignores sends until
           the first assignment *)
        Alcotest.(check int) "diags" 0
          (len "void H(void) { NI_SEND(MSG_PUT, F_DATA, 0, W_NOWAIT, 1, 0); }"));
    t "reassignment on the path clears the state" `Quick (fun () ->
        Alcotest.(check int) "diags" 0
          (len
             "void H(void) { HANDLER_GLOBALS(header.nh.len) = LEN_NODATA; \
              HANDLER_GLOBALS(header.nh.len) = LEN_WORD; NI_SEND(MSG_PUT, \
              F_DATA, 0, W_NOWAIT, 1, 0); }"));
    t "assignment hundreds of lines away still tracked" `Quick (fun () ->
        let pad =
          String.concat ""
            (List.init 120 (fun i -> Printf.sprintf "  x = %d;\n" i))
        in
        Alcotest.(check int) "diags" 1
          (len
             ("void H(void) { long x; HANDLER_GLOBALS(header.nh.len) = \
               LEN_NODATA;\n" ^ pad
             ^ "NI_SEND(MSG_PUT, F_DATA, 0, W_NOWAIT, 1, 0); }")));
    t "PI and IO sends are covered too" `Quick (fun () ->
        Alcotest.(check int) "diags" 2
          (len
             "void H(void) { HANDLER_GLOBALS(header.nh.len) = LEN_NODATA; \
              PI_SEND(F_DATA, 0, 0, W_NOWAIT, 1, 0); IO_SEND(F_DATA, 0, 0, \
              W_NOWAIT, 1, 0); }"));
    t "correlated branches give the two coma FPs" `Quick (fun () ->
        Alcotest.(check int) "diags" 2
          (len
             "void H(void) { long have;\n\
              have = HANDLER_GLOBALS(dirEntry.tags) != 0;\n\
              if (have) { HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE; } \
              else { HANDLER_GLOBALS(header.nh.len) = LEN_NODATA; }\n\
              if (have) { NI_SEND(MSG_PUT, F_DATA, 0, W_NOWAIT, 1, 0); } \
              else { NI_SEND(MSG_NAK, F_NODATA, 0, W_NOWAIT, 1, 0); } }"));
  ]

(* ------------------------------------------------------------------ *)
(* buffer management                                                   *)
(* ------------------------------------------------------------------ *)

let buf ?spec src = count_diags Buffer_mgmt.run ?spec src

let buf_cases =
  [
    t "free once is clean" `Quick (fun () ->
        Alcotest.(check int) "diags" 0
          (buf "void H(void) { NI_SEND(MSG_NAK, F_NODATA, 0, W_NOWAIT, 1, \
                0); FREE_DB(); }"));
    t "double free errs once" `Quick (fun () ->
        Alcotest.(check int) "diags" 1
          (buf "void H(void) { FREE_DB(); FREE_DB(); }"));
    t "leak at return errs" `Quick (fun () ->
        Alcotest.(check int) "diags" 1 (buf "void H(void) { x = 1; }"));
    t "send after free errs" `Quick (fun () ->
        Alcotest.(check int) "diags" 1
          (buf
             "void H(void) { FREE_DB(); NI_SEND(MSG_NAK, F_NODATA, 0, \
              W_NOWAIT, 1, 0); }"));
    t "use after free errs" `Quick (fun () ->
        Alcotest.(check int) "diags" 1
          (buf
             "void H(void) { long a; FREE_DB(); a = MISCBUS_READ_DB(a, 0); }"));
    t "realloc after free is the legal way" `Quick (fun () ->
        Alcotest.(check int) "diags" 0
          (buf
             "void H(void) { long b; FREE_DB(); b = ALLOCATE_DB(); if \
              (ALLOC_FAILED(b)) { return; } MISCBUS_WRITE_DB(b, 0, 1); \
              NI_SEND(MSG_PUT, F_DATA, 0, W_NOWAIT, 1, 0); FREE_DB(); }"));
    t "allocating while holding errs" `Quick (fun () ->
        Alcotest.(check int) "diags" 1
          (buf "void H(void) { long b; b = ALLOCATE_DB(); FREE_DB(); }"));
    t "software handler must allocate before sending" `Quick (fun () ->
        let spec = spec_for ~sw:[ "S" ] [] in
        Alcotest.(check int) "diags" 1
          (buf ~spec
             "void S(void) { NI_SEND(MSG_PUT, F_DATA, 0, W_NOWAIT, 1, 0); }"));
    t "software handler with allocation is fine" `Quick (fun () ->
        let spec = spec_for ~sw:[ "S" ] [] in
        Alcotest.(check int) "diags" 0
          (buf ~spec
             "void S(void) { long b; b = ALLOCATE_DB(); if (ALLOC_FAILED(b)) \
              { return; } NI_SEND(MSG_PUT, F_DATA, 0, W_NOWAIT, 1, 0); \
              FREE_DB(); }"));
    t "free-func table frees for the caller" `Quick (fun () ->
        let spec = spec_for ~free_funcs:[ "NakIt" ] [ "H"; "NakIt" ] in
        Alcotest.(check int) "diags" 0
          (buf ~spec "void H(void) { NakIt(); }"));
    t "free-func is itself checked for consistency" `Quick (fun () ->
        let spec = spec_for ~free_funcs:[ "NakIt" ] [ "H" ] in
        (* listed as freeing, but does not free *)
        Alcotest.(check int) "diags" 1
          (buf ~spec "void NakIt(void) { x = 1; }" |> fun n -> n));
    t "use-func must not free" `Quick (fun () ->
        let spec = spec_for ~use_funcs:[ "Peek" ] [ "H" ] in
        Alcotest.(check int) "diags" 1
          (buf ~spec "void Peek(void) { FREE_DB(); }"));
    t "cond-free routine: both branches tracked" `Quick (fun () ->
        let spec = spec_for ~cond_free:[ "TryFree" ] [ "H" ] in
        Alcotest.(check int) "diags" 0
          (buf ~spec
             "void H(void) { if (TryFree()) { return; } FREE_DB(); }"));
    t "negated cond-free also tracked" `Quick (fun () ->
        let spec = spec_for ~cond_free:[ "TryFree" ] [ "H" ] in
        Alcotest.(check int) "diags" 0
          (buf ~spec
             "void H(void) { if (!TryFree()) { FREE_DB(); } }"));
    t "no_free_needed suppresses the leak" `Quick (fun () ->
        Alcotest.(check int) "diags" 0
          (buf "void H(void) { no_free_needed(); }"));
    t "has_buffer restores the state" `Quick (fun () ->
        Alcotest.(check int) "diags" 0
          (buf
             "void H(void) { FREE_DB(); has_buffer(); FREE_DB(); }"));
    t "DB_INC_REFCOUNT is aggressively flagged" `Quick (fun () ->
        Alcotest.(check int) "diags" 1
          (buf "void H(void) { DB_INC_REFCOUNT(); FREE_DB(); }"));
    t "useful annotations are counted" `Quick (fun () ->
        let spec = spec_for [ "H" ] in
        let outcome =
          Buffer_mgmt.run_with_annotations ~spec
            (parse "void H(void) { if (c) { no_free_needed(); return; } \
                    FREE_DB(); }")
        in
        Alcotest.(check int) "useful" 1
          outcome.Buffer_mgmt.useful_annotations);
    t "procedures outside the tables are skipped" `Quick (fun () ->
        Alcotest.(check int) "diags" 0
          (buf "void util(void) { FREE_DB(); FREE_DB(); }"));
  ]

(* ------------------------------------------------------------------ *)
(* lanes                                                               *)
(* ------------------------------------------------------------------ *)

let lanes_diags ?(allowance = [| 0; 0; 1; 1 |]) src =
  let spec = spec_for ~allowance [ "H" ] in
  Lane_checker.run ~spec (parse src)

let lanes_cases =
  [
    t "within allowance is quiet" `Quick (fun () ->
        Alcotest.(check int) "diags" 0
          (List.length
             (lanes_diags
                "void H(void) { NI_SEND(MSG_NAK, F_NODATA, 0, W_NOWAIT, 1, \
                 0); }")));
    t "one send beyond the allowance errs" `Quick (fun () ->
        Alcotest.(check int) "diags" 1
          (List.length
             (lanes_diags
                "void H(void) { NI_SEND(MSG_NAK, F_NODATA, 0, W_NOWAIT, 1, \
                 0); NI_SEND(MSG_WB_ACK, F_NODATA, 0, W_NOWAIT, 1, 0); }")));
    t "alternative paths do not add up" `Quick (fun () ->
        Alcotest.(check int) "diags" 0
          (List.length
             (lanes_diags
                "void H(void) { if (c) { NI_SEND(MSG_NAK, F_NODATA, 0, \
                 W_NOWAIT, 1, 0); } else { NI_SEND(MSG_WB_ACK, F_NODATA, 0, \
                 W_NOWAIT, 1, 0); } }")));
    t "request and reply lanes are separate" `Quick (fun () ->
        Alcotest.(check int) "diags" 0
          (List.length
             (lanes_diags
                "void H(void) { NI_SEND(MSG_GET, F_NODATA, 0, W_NOWAIT, 1, \
                 0); NI_SEND(MSG_NAK, F_NODATA, 0, W_NOWAIT, 1, 0); }")));
    t "sends in callees count against the caller" `Quick (fun () ->
        Alcotest.(check int) "diags" 1
          (List.length
             (lanes_diags
                "void helper(void) { NI_SEND(MSG_NAK, F_NODATA, 0, W_NOWAIT, \
                 1, 0); }\n\
                 void H(void) { NI_SEND(MSG_NAK, F_NODATA, 0, W_NOWAIT, 1, \
                 0); helper(); }")));
    t "space-checked sends in loops are fixed points" `Quick (fun () ->
        Alcotest.(check int) "diags" 0
          (List.length
             (lanes_diags
                "void H(void) { while (c) { WAIT_FOR_OUTPUT_SPACE(2); \
                 NI_SEND(MSG_INVAL, F_NODATA, 0, W_NOWAIT, 1, 0); } }")));
    t "bare sends in loops are flagged" `Quick (fun () ->
        Alcotest.(check bool) "warned" true
          (lanes_diags
             "void H(void) { while (c) { NI_SEND(MSG_INVAL, F_NODATA, 0, \
              W_NOWAIT, 1, 0); } }"
          <> []));
    t "error carries an inter-procedural back trace" `Quick (fun () ->
        match
          lanes_diags
            "void helper(void) { NI_SEND(MSG_NAK, F_NODATA, 0, W_NOWAIT, 1, \
             0); }\n\
             void H(void) { NI_SEND(MSG_NAK, F_NODATA, 0, W_NOWAIT, 1, 0); \
             helper(); }"
        with
        | [ d ] ->
          Alcotest.(check bool) "trace" true (List.length d.Diag.trace >= 2)
        | _ -> Alcotest.fail "expected one diagnostic");
  ]

let suite =
  ("checkers (race, len, buffer, lanes)",
   race_cases @ len_cases @ buf_cases @ lanes_cases)
