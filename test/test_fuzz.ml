(** Crash-freedom fuzzing: every tool in the pipeline must either succeed
    or raise its own documented exception, on arbitrary inputs — random
    handler shapes with every seeded-bug kind, and randomly mutated
    source text. *)

let t = Alcotest.test_case

let all_bugs =
  [
    Skeletons.No_bug; Skeletons.Race_read; Skeletons.Race_read_debug_fp;
    Skeletons.Len_data_mismatch; Skeletons.Double_free;
    Skeletons.Buffer_leak; Skeletons.Buf_minor; Skeletons.Buf_annot_useful;
    Skeletons.Buf_annot_fp; Skeletons.Buf_data_fp; Skeletons.Lane_overrun;
    Skeletons.Hook_omission; Skeletons.Hook_unimplemented;
    Skeletons.Alloc_unchecked_fp; Skeletons.Dir_no_writeback;
    Skeletons.Dir_spec_nak; Skeletons.Dir_spec_backout_fp;
    Skeletons.Dir_abstraction_fp; Skeletons.Sendwait_barrier_fp;
  ]

let all_flavors =
  [
    Skeletons.Bitvector; Skeletons.Dyn_ptr; Skeletons.Sci; Skeletons.Coma;
    Skeletons.Rac; Skeletons.Common;
  ]

(* a fully random handler: any style, any flavour, any bug *)
let random_handler seed : Ast.func =
  let rng = Rng.create ~seed in
  let g = Skeletons.gctx ~rng ~flavor:(Rng.choose rng all_flavors) in
  for _ = 1 to 3 do
    ignore (Skeletons.fresh_local g)
  done;
  let bug = Rng.choose rng all_bugs in
  let pad = Rng.range rng 0 8 in
  let branches = Rng.range rng 0 3 in
  let body =
    match Rng.int rng 8 with
    | 0 ->
      Skeletons.dir_consult_body g ~realloc:(Rng.bool rng)
        ~use_dir:(Rng.bool rng) ~dir_extra:(Rng.int rng 3) ~bug ~pad
        ~branches ()
    | 1 -> Skeletons.reply_receive_body g ~bug ~pad ~branches
             ~reads:(Rng.int rng 3)
    | 2 ->
      Skeletons.intervention_body g ~bug ~pad ~branches
        ~iface:(if Rng.bool rng then `PI else `IO)
    | 3 ->
      Skeletons.uncached_body g ~use_dir:(Rng.bool rng) ~bug ~pad ~branches
        ~write:(Rng.bool rng) ()
    | 4 -> Skeletons.writeback_body g ~use_dir:(Rng.bool rng) ~bug ~pad
             ~branches ()
    | 5 -> Skeletons.inval_body g ~use_dir:(Rng.bool rng) ~bug ~pad
             ~branches ()
    | 6 -> Skeletons.sw_body g ~bug ~pad ~branches ~alloc:(Rng.bool rng)
    | _ -> Skeletons.len_var_body g ~pad
  in
  let prologue =
    Skeletons.prologue ~kind:Flash_api.Hw_handler ~bug
  in
  let decls = List.rev_map (fun v -> Cb.decl_long v) g.Skeletons.locals in
  Cb.func "Fuzzed"
    (prologue
    @ [ Cb.decl_long "addr"; Cb.decl_long "src" ]
    @ decls
    @ [
        Cb.assign (Cb.id "addr") (Cb.hg "header.nh.address");
        Cb.assign (Cb.id "src") (Cb.hg "header.nh.src");
      ]
    @ body)

let spec =
  {
    Flash_api.p_name = "fuzz";
    p_handlers =
      [
        {
          Flash_api.h_name = "Fuzzed";
          h_kind = Flash_api.Hw_handler;
          h_lane_allowance = [| 1; 1; 1; 1 |];
          h_no_stack = false;
        };
      ];
    p_free_funcs = [ "SendNakAndFree" ];
    p_use_funcs = [];
    p_cond_free_funcs = [ "TryFreeBuffer" ];
  }

(* round-trip the function through the printer/parser so locations and
   types are realistic *)
let materialize (f : Ast.func) : Ast.tunit list =
  let printed =
    Pp.tunit_to_string { Ast.tu_file = "fz.c"; tu_globals = [ Ast.Gfunc f ] }
  in
  Frontend.of_strings [ ("fz.c", Prelude.text ^ printed) ]

let prop_pipeline_never_crashes =
  QCheck.Test.make
    ~name:"checkers, fixer, optimizer, interp never crash on random handlers"
    ~count:120
    QCheck.(int_bound 10_000_000)
    (fun seed ->
      let tus = materialize (random_handler seed) in
      (* every checker *)
      List.iter
        (fun (c : Registry.checker) ->
          ignore (c.Registry.run ~spec tus);
          ignore (c.Registry.applied tus))
        Registry.all;
      (* CFG + path statistics *)
      List.iter
        (fun tu ->
          List.iter
            (fun f -> ignore (Paths.analyze (Cfg.build f)))
            (Ast.functions tu))
        tus;
      (* transform and optimise *)
      ignore (Fixer.fix_all ~spec tus);
      ignore (Optimizer.optimize tus);
      (* interpret the handler with a fuel bound *)
      let program = Callgraph.build tus in
      let consts = Interp.consts_of_program tus in
      let node = Interp.create_node 0 in
      node.Interp.current_buffer <- Buffers.allocate node.Interp.buffers;
      (match Callgraph.find_func program "Fuzzed" with
      | Some f ->
        ignore (Interp.run_handler ~max_steps:50_000 ~node ~program ~consts f)
      | None -> ());
      true)

(* mutate corpus text: the parser must parse or raise its own errors *)
let prop_parser_total_on_mutations =
  let corpus_file =
    lazy
      (let corpus = Corpus.generate () in
       snd (List.hd (List.hd corpus.Corpus.protocols).Corpus.files))
  in
  QCheck.Test.make
    ~name:"parser is total (parses or raises Parser/Lexer.Error) on mutations"
    ~count:100
    QCheck.(pair (int_bound 1_000_000) (int_bound 255))
    (fun (pos_seed, byte) ->
      let src = Lazy.force corpus_file in
      let b = Bytes.of_string src in
      let pos = pos_seed mod Bytes.length b in
      Bytes.set b pos (Char.chr byte);
      let mutated = Bytes.to_string b in
      match Parser.parse_string ~file:"mut.c" mutated with
      | _ -> true
      | exception Parser.Error _ -> true
      | exception Lexer.Error _ -> true)

(* the metal DSL parser likewise *)
let prop_mdsl_total_on_mutations =
  let figure2 =
    "sm w { decl { scalar } a, b; start: { WAIT_FOR_DB_FULL(a); } ==> stop \
     | { MISCBUS_READ_DB(a, b); } ==> { err(\"race\"); } ; }"
  in
  QCheck.Test.make
    ~name:"metal parser is total on mutations" ~count:150
    QCheck.(pair (int_bound 1_000_000) (int_bound 255))
    (fun (pos_seed, byte) ->
      let b = Bytes.of_string figure2 in
      let pos = pos_seed mod Bytes.length b in
      Bytes.set b pos (Char.chr byte);
      match Mdsl.parse (Bytes.to_string b) with
      | _ -> true
      | exception Mdsl.Parse_error _ -> true
      | exception Pattern.Parse_error _ -> true)

let cases =
  [
    t "empty translation unit is fine everywhere" `Quick (fun () ->
        let tus = Frontend.of_strings [ ("e.c", Prelude.text) ] in
        List.iter
          (fun (c : Registry.checker) -> ignore (c.Registry.run ~spec tus))
          Registry.all;
        ignore (Optimizer.optimize tus));
    t "empty function body" `Quick (fun () ->
        let tus =
          Frontend.of_strings [ ("e.c", Prelude.text ^ "void Fuzzed(void) { }") ]
        in
        List.iter
          (fun (c : Registry.checker) -> ignore (c.Registry.run ~spec tus))
          Registry.all);
  ]

(* the Mcfuzz differential campaign (lib/fuzz): deterministic seeds so
   CI is stable; any failure prints the seed, and
   [mcfuzz --seed N --count 1 --mutate] reproduces it *)
let mcfuzz_cases =
  [
    t "mcfuzz: 200-seed smoke of the four differential oracles" `Quick
      (fun () ->
        let { Fuzz_driver.failures; _ } =
          Fuzz_driver.run ~base_seed:1 ~count:200 ~mutate:false ()
        in
        List.iter
          (fun f -> Format.eprintf "FAIL %a@." Fuzz_oracle.pp_failure f)
          failures;
        Alcotest.(check int) "oracle disagreements" 0 (List.length failures));
    t "mcfuzz: seeded-bug recall over every mutation kind" `Quick (fun () ->
        let { Fuzz_driver.score; failures } =
          Fuzz_driver.run ~base_seed:5000 ~count:20 ~mutate:true ()
        in
        Alcotest.(check int) "oracle disagreements" 0 (List.length failures);
        Alcotest.(check bool) "recall >= 0.9" true
          (Fuzz_score.overall_recall score >= 0.9));
  ]

let suite =
  ( "fuzz",
    cases @ mcfuzz_cases
    @ [
        QCheck_alcotest.to_alcotest prop_pipeline_never_crashes;
        QCheck_alcotest.to_alcotest prop_parser_total_on_mutations;
        QCheck_alcotest.to_alcotest prop_mdsl_total_on_mutations;
      ] )
