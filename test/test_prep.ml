(** Prep-sharing tests: the fused driver's diagnostics — including the
    rendered witness paths [--explain] prints — are identical to the
    per-checker sequential path on arbitrary generated programs, and one
    fused run builds exactly one [Prep.t] per function (pinned via the
    [prep.build] Mcobs counter). *)

let t = Alcotest.test_case

(* the strictest rendering: checker names interleaved with the full
   --explain output, so content, order, and witness steps are compared *)
let explain_render (results : (string * Diag.t list) list) : string list =
  List.concat_map
    (fun (name, ds) ->
      name :: List.map (fun d -> Format.asprintf "%a" Diag.pp_explain d) ds)
    results

let prop_fused_identical =
  QCheck.Test.make ~count:25
    ~name:"fused = per-checker on generated programs (incl. witnesses)"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let p = Fuzz_gen.generate ~seed () in
      let spec = p.Fuzz_gen.spec and tus = p.Fuzz_gen.tus in
      let seq = explain_render (Registry.run_all ~spec tus) in
      let fused = explain_render (Registry.run_all_fused ~spec tus) in
      if seq <> fused then
        QCheck.Test.fail_reportf
          "seed %d: fused diagnostics/witnesses differ" seed;
      true)

let counter_of (snap : Mcobs.snapshot) name =
  Option.value ~default:0 (List.assoc_opt name snap.Mcobs.counters)

let build_once_tests =
  [
    t "fused run builds exactly one Prep per function" `Quick (fun () ->
        let p = Option.get (Corpus.find (Corpus.generate ()) "bitvector") in
        let nfuncs =
          List.fold_left
            (fun acc tu -> acc + List.length (Ast.functions tu))
            0 p.Corpus.tus
        in
        Mcobs.set_enabled true;
        Mcobs.reset ();
        ignore (Registry.run_all_fused ~spec:p.Corpus.spec p.Corpus.tus);
        let snap = Mcobs.snapshot () in
        Mcobs.reset ();
        Alcotest.(check int)
          "prep.build count" nfuncs
          (counter_of snap "prep.build"));
  ]

let product_tests =
  [
    t "product walk is identical on the corpus and golden protocols"
      `Quick (fun () ->
        match Fuzz_product.sweep () with
        | [] -> ()
        | fs ->
          Alcotest.failf "product sweep: %d disagreement(s), first: %s"
            (List.length fs)
            (match fs with f :: _ -> f.Fuzz_oracle.f_detail | [] -> ""));
  ]

let suite =
  ( "prep",
    build_once_tests @ product_tests
    @ [ QCheck_alcotest.to_alcotest prop_fused_identical ] )
