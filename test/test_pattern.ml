(** Pattern language tests: metal-style source patterns with typed
    wildcards. *)

let t = Alcotest.test_case

let e s = Parser.parse_expr_string s

let annotated src expr_text =
  (* parse a tiny program so the expression gets real types *)
  let tu =
    Frontend.of_string ~file:"t.c"
      (src ^ "\nvoid probe(void) { " ^ expr_text ^ "; }")
  in
  let result = ref None in
  List.iter
    (fun (f : Ast.func) ->
      if f.Ast.f_name = "probe" then
        List.iter
          (fun s ->
            match s.Ast.sdesc with
            | Ast.Sexpr ex -> result := Some ex
            | _ -> ())
          f.Ast.f_body)
    (Ast.functions tu);
  Option.get !result

let matches pat expr = Pattern.match_expr pat expr <> None

let cases =
  [
    t "literal call matches" `Quick (fun () ->
        let p = Pattern.expr "FREE_DB()" in
        Alcotest.(check bool) "match" true (matches p (e "FREE_DB()"));
        Alcotest.(check bool) "other call" false (matches p (e "FREE_X()"));
        Alcotest.(check bool) "wrong arity" false (matches p (e "FREE_DB(1)")));
    t "wildcard binds the argument" `Quick (fun () ->
        let p =
          Pattern.expr ~decls:[ ("addr", Pattern.Any) ] "WAIT_FOR_DB_FULL(addr)"
        in
        match Pattern.match_expr p (e "WAIT_FOR_DB_FULL(x + 1)") with
        | Some b ->
          Alcotest.(check string) "bound" "x + 1"
            (Pp.expr_to_string (Option.get (Binding.find b "addr")))
        | None -> Alcotest.fail "expected a match");
    t "repeated wildcard must agree" `Quick (fun () ->
        let p = Pattern.expr ~decls:[ ("x", Pattern.Any) ] "f(x, x)" in
        Alcotest.(check bool) "same" true (matches p (e "f(a + 1, a + 1)"));
        Alcotest.(check bool) "different" false (matches p (e "f(a, b)")));
    t "constants in patterns are literal" `Quick (fun () ->
        let p =
          Pattern.expr ~decls:[ ("k", Pattern.Any) ]
            "PI_SEND(F_DATA, k, 0, 0, 1, 0)"
        in
        Alcotest.(check bool) "exact" true
          (matches p (e "PI_SEND(F_DATA, 9, 0, 0, 1, 0)"));
        Alcotest.(check bool) "different flag" false
          (matches p (e "PI_SEND(F_NODATA, 9, 0, 0, 1, 0)")));
    t "assignment pattern with field path" `Quick (fun () ->
        let p = Pattern.expr "HANDLER_GLOBALS(header.nh.len) = LEN_NODATA" in
        Alcotest.(check bool) "match" true
          (matches p (e "HANDLER_GLOBALS(header.nh.len) = LEN_NODATA"));
        Alcotest.(check bool) "other constant" false
          (matches p (e "HANDLER_GLOBALS(header.nh.len) = LEN_WORD"));
        Alcotest.(check bool) "other field" false
          (matches p (e "HANDLER_GLOBALS(header.nh.type) = LEN_NODATA")));
    t "alternation is ordered" `Quick (fun () ->
        let p =
          Pattern.alt [ Pattern.expr "a()"; Pattern.expr "b()" ]
        in
        Alcotest.(check bool) "first" true (matches p (e "a()"));
        Alcotest.(check bool) "second" true (matches p (e "b()"));
        Alcotest.(check bool) "neither" false (matches p (e "c()")));
    t "scalar wildcard rejects structs when typed" `Quick (fun () ->
        let p = Pattern.expr ~decls:[ ("v", Pattern.Scalar) ] "use(v)" in
        let ok =
          annotated "struct s { int f; }; struct s g; void use(long x);"
            "use(g.f)"
        in
        Alcotest.(check bool) "int field is scalar" true (matches p ok));
    t "floating wildcard needs float type" `Quick (fun () ->
        let p = Pattern.expr ~decls:[ ("v", Pattern.Floating) ] "use(v)" in
        let fl = annotated "double d; void use(double x);" "use(d)" in
        let it = annotated "int i; void use(long x);" "use(i)" in
        Alcotest.(check bool) "double matches" true (matches p fl);
        Alcotest.(check bool) "int does not" false (matches p it));
    t "constant wildcard" `Quick (fun () ->
        let p = Pattern.expr ~decls:[ ("k", Pattern.Constant) ] "f(k)" in
        Alcotest.(check bool) "literal" true (matches p (e "f(42)"));
        Alcotest.(check bool) "expression" false (matches p (e "f(x)")));
    t "find_all returns evaluation order" `Quick (fun () ->
        let p = Pattern.expr ~decls:[ ("x", Pattern.Any) ] "g(x)" in
        let hits = Pattern.find_all p (e "f(g(1), g(2)) + g(3)") in
        let args =
          List.map
            (fun (_, b) -> Pp.expr_to_string (Option.get (Binding.find b "x")))
            hits
        in
        Alcotest.(check (list string)) "order" [ "1"; "2"; "3" ] args);
    t "occurs looks inside subexpressions" `Quick (fun () ->
        let p = Pattern.expr "FREE_DB()" in
        Alcotest.(check bool) "nested" true
          (Pattern.occurs p (e "x = 1 + f(FREE_DB(), 2)")));
    t "call helper matches any args" `Quick (fun () ->
        let p = Pattern.call "NI_SEND" ~arity:6 in
        Alcotest.(check bool) "match" true
          (matches p (e "NI_SEND(1, 2, 3, 4, 5, 6)")));
    t "bad pattern raises" `Quick (fun () ->
        match Pattern.expr "f(" with
        | exception Pattern.Parse_error _ -> ()
        | _ -> Alcotest.fail "expected Parse_error");
    t "binding pp prints pairs" `Quick (fun () ->
        let p = Pattern.expr ~decls:[ ("x", Pattern.Any) ] "f(x)" in
        match Pattern.match_expr p (e "f(7)") with
        | Some b ->
          Alcotest.(check string) "pp" "x=7"
            (Format.asprintf "%a" Binding.pp b)
        | None -> Alcotest.fail "no match");
  ]

let suite = ("pattern", cases)
