(** Machine-model tests: buffer pool, lanes, directory organisations. *)

let t = Alcotest.test_case

(* ------------------------------------------------------------------ *)
(* buffer pool                                                         *)
(* ------------------------------------------------------------------ *)

let buffer_cases =
  [
    t "allocate and free round trip" `Quick (fun () ->
        let pool = Buffers.create ~size:2 () in
        let b = Option.get (Buffers.allocate pool) in
        Alcotest.(check int) "one free left" 1 (Buffers.free_count pool);
        Buffers.free pool b;
        Alcotest.(check int) "all free" 2 (Buffers.free_count pool);
        Alcotest.(check int) "no faults" 0 (List.length (Buffers.faults pool)));
    t "exhaustion reports a fault" `Quick (fun () ->
        let pool = Buffers.create ~size:1 () in
        let _ = Buffers.allocate pool in
        Alcotest.(check bool) "second fails" true
          (Buffers.allocate pool = None);
        Alcotest.(check bool) "fault recorded" true
          (List.mem Buffers.Pool_exhausted (Buffers.faults pool)));
    t "double free reports a fault" `Quick (fun () ->
        let pool = Buffers.create ~size:1 () in
        let b = Option.get (Buffers.allocate pool) in
        Buffers.free pool b;
        Buffers.free pool b;
        Alcotest.(check bool) "fault" true
          (List.exists
             (function Buffers.Double_free _ -> true | _ -> false)
             (Buffers.faults pool)));
    t "use after free reports a fault" `Quick (fun () ->
        let pool = Buffers.create ~size:1 () in
        let b = Option.get (Buffers.allocate pool) in
        Buffers.free pool b;
        ignore (Buffers.read pool b ~synchronized:true ~word:0);
        Alcotest.(check bool) "fault" true
          (List.exists
             (function Buffers.Use_after_free _ -> true | _ -> false)
             (Buffers.faults pool)));
    t "read while filling is the race" `Quick (fun () ->
        let pool = Buffers.create ~size:1 () in
        let b = Option.get (Buffers.allocate ~filling:true pool) in
        b.Buffers.words.(0) <- 7;
        (* unsynchronised read sees garbage (0) and records the fault *)
        Alcotest.(check int) "stale" 0
          (Buffers.read pool b ~synchronized:false ~word:0);
        Alcotest.(check bool) "fault" true
          (List.exists
             (function Buffers.Read_before_fill _ -> true | _ -> false)
             (Buffers.faults pool));
        Buffers.mark_full b;
        Alcotest.(check int) "after fill" 7
          (Buffers.read pool b ~synchronized:false ~word:0));
    t "refcount keeps the buffer alive" `Quick (fun () ->
        let pool = Buffers.create ~size:1 () in
        let b = Option.get (Buffers.allocate pool) in
        Buffers.incr_refcount b;
        Buffers.free pool b;
        Alcotest.(check int) "still held" 0 (Buffers.free_count pool);
        Buffers.free pool b;
        Alcotest.(check int) "released" 1 (Buffers.free_count pool);
        Alcotest.(check int) "no faults" 0 (List.length (Buffers.faults pool)));
  ]

(* property: a random sequence of allocs/frees keeps the pool well-formed *)
let prop_pool_well_formed =
  QCheck.Test.make ~name:"pool stays well-formed under random ops" ~count:100
    QCheck.(list (int_bound 2))
    (fun ops ->
      let pool = Buffers.create ~size:4 () in
      let held = ref [] in
      List.iter
        (fun op ->
          match op with
          | 0 -> (
            match Buffers.allocate pool with
            | Some b -> held := b :: !held
            | None -> ())
          | 1 -> (
            match !held with
            | b :: rest ->
              Buffers.free pool b;
              held := rest
            | [] -> ())
          | _ -> (
            match !held with
            | b :: _ ->
              Buffers.write pool b ~word:0 ~value:1;
              ignore (Buffers.read pool b ~synchronized:true ~word:0)
            | [] -> ()))
        ops;
      Buffers.well_formed pool)

(* ------------------------------------------------------------------ *)
(* lanes                                                               *)
(* ------------------------------------------------------------------ *)

let msg lane =
  {
    Message.opcode = "MSG_NAK";
    src = 0;
    dst = 1;
    addr = 0;
    len = Message.Len_nodata;
    has_data = false;
    data = [||];
    lane;
  }

let lane_cases =
  [
    t "send and drain" `Quick (fun () ->
        let lanes = Lanes.create () in
        Alcotest.(check bool) "accepted" true (Lanes.send lanes (msg 2));
        Alcotest.(check int) "pending" 1 (Lanes.pending lanes);
        let out = Lanes.drain lanes in
        Alcotest.(check int) "drained" 1 (List.length out);
        Alcotest.(check int) "empty" 0 (Lanes.pending lanes));
    t "capacity overflow" `Quick (fun () ->
        let lanes = Lanes.create ~capacity:2 () in
        Alcotest.(check bool) "1" true (Lanes.send lanes (msg 0));
        Alcotest.(check bool) "2" true (Lanes.send lanes (msg 0));
        Alcotest.(check bool) "3 rejected" false (Lanes.send lanes (msg 0));
        Alcotest.(check bool) "fault" true (Lanes.faults lanes <> []));
    t "space reporting" `Quick (fun () ->
        let lanes = Lanes.create ~capacity:3 () in
        Alcotest.(check int) "full space" 3 (Lanes.space lanes 1);
        ignore (Lanes.send lanes (msg 1));
        Alcotest.(check int) "one used" 2 (Lanes.space lanes 1));
    t "drain prefers the reply lane" `Quick (fun () ->
        let lanes = Lanes.create () in
        ignore (Lanes.send lanes (msg Flash_api.lane_net_request));
        ignore (Lanes.send lanes (msg Flash_api.lane_net_reply));
        match Lanes.drain lanes with
        | first :: _ ->
          Alcotest.(check int) "reply first" Flash_api.lane_net_reply
            first.Message.lane
        | [] -> Alcotest.fail "nothing drained");
  ]

(* ------------------------------------------------------------------ *)
(* message length consistency                                          *)
(* ------------------------------------------------------------------ *)

let message_cases =
  [
    t "consistent combinations" `Quick (fun () ->
        let mk has_data len =
          { (msg 0) with Message.has_data; len }
        in
        Alcotest.(check bool) "data+cacheline" true
          (Message.length_consistent (mk true Message.Len_cacheline));
        Alcotest.(check bool) "nodata+0" true
          (Message.length_consistent (mk false Message.Len_nodata));
        Alcotest.(check bool) "data+0 bad" false
          (Message.length_consistent (mk true Message.Len_nodata));
        Alcotest.(check bool) "nodata+word bad" false
          (Message.length_consistent (mk false Message.Len_word)));
    t "length parsing round trip" `Quick (fun () ->
        List.iter
          (fun l ->
            Alcotest.(check bool) "roundtrip" true
              (Message.length_of_string (Message.string_of_length l) = Some l))
          [ Message.Len_nodata; Message.Len_word; Message.Len_cacheline ]);
  ]

(* ------------------------------------------------------------------ *)
(* directory organisations: shared model-based property                *)
(* ------------------------------------------------------------------ *)

type dir_op = Add of int | Remove of int | Set_dirty of int | Clear_dirty

let dir_op_gen n_nodes =
  QCheck.Gen.(
    oneof
      [
        map (fun n -> Add n) (int_bound (n_nodes - 1));
        map (fun n -> Remove n) (int_bound (n_nodes - 1));
        map (fun n -> Set_dirty n) (int_bound (n_nodes - 1));
        return Clear_dirty;
      ])

(* run the same ops against the implementation and a reference set *)
let check_against_model (module D : Directory.S) ops =
  let n_nodes = 4 in
  let dir = D.create ~n_nodes ~n_lines:1 in
  let reference = Hashtbl.create 8 in
  let ref_sharers () =
    Hashtbl.fold (fun n () acc -> n :: acc) reference [] |> List.sort compare
  in
  List.for_all
    (fun op ->
      (match op with
      | Add n ->
        D.add_sharer dir ~line:0 ~node:n;
        Hashtbl.replace reference n ()
      | Remove n ->
        D.remove_sharer dir ~line:0 ~node:n;
        Hashtbl.remove reference n
      | Set_dirty n ->
        D.set_dirty dir ~line:0 ~owner:n;
        (* exclusive ownership: implementations may clear other sharers,
           so resynchronise the reference with the implementation *)
        Hashtbl.reset reference;
        List.iter (fun s -> Hashtbl.replace reference s ())
          (D.sharers dir ~line:0)
      | Clear_dirty -> D.clear_dirty dir ~line:0);
      D.well_formed dir
      && D.sharers dir ~line:0 = ref_sharers ()
      && List.for_all
           (fun n -> D.is_sharer dir ~line:0 ~node:n = Hashtbl.mem reference n)
           [ 0; 1; 2; 3 ])
    ops

(* coarse vectors deliberately over-approximate: the implementation's
   sharer set must contain the reference set, never miss a member *)
let check_superset_model (module D : Directory.S) ops =
  let n_nodes = 4 in
  let dir = D.create ~n_nodes ~n_lines:1 in
  let reference = Hashtbl.create 8 in
  List.for_all
    (fun op ->
      (match op with
      | Add n ->
        D.add_sharer dir ~line:0 ~node:n;
        Hashtbl.replace reference n ()
      | Remove n ->
        D.remove_sharer dir ~line:0 ~node:n;
        Hashtbl.remove reference n
      | Set_dirty n -> D.set_dirty dir ~line:0 ~owner:n
      | Clear_dirty -> D.clear_dirty dir ~line:0);
      D.well_formed dir
      && Hashtbl.fold
           (fun n () acc -> acc && D.is_sharer dir ~line:0 ~node:n)
           reference true)
    ops

let dir_props =
  List.map
    (fun (module D : Directory.S) ->
      if String.equal D.name "coarsevector" then
        QCheck_alcotest.to_alcotest
          (QCheck.Test.make
             ~name:"coarsevector never loses a sharer (over-approximates)"
             ~count:100
             (QCheck.make QCheck.Gen.(list_size (0 -- 40) (dir_op_gen 4)))
             (fun ops -> check_superset_model (module D) ops))
      else
        QCheck_alcotest.to_alcotest
          (QCheck.Test.make
             ~name:(Printf.sprintf "%s directory agrees with a set model" D.name)
             ~count:100
             (QCheck.make QCheck.Gen.(list_size (0 -- 40) (dir_op_gen 4)))
             (fun ops -> check_against_model (module D) ops)))
    Directory.all

let dir_unit_cases =
  List.concat_map
    (fun (module D : Directory.S) ->
      [
        t (D.name ^ ": dirty owner round trip") `Quick (fun () ->
            let d = D.create ~n_nodes:4 ~n_lines:2 in
            D.set_dirty d ~line:0 ~owner:2;
            Alcotest.(check bool) "dirty" true (D.is_dirty d ~line:0);
            Alcotest.(check (option int)) "owner" (Some 2) (D.owner d ~line:0);
            Alcotest.(check bool) "other line clean" false
              (D.is_dirty d ~line:1);
            D.clear_dirty d ~line:0;
            Alcotest.(check bool) "cleared" false (D.is_dirty d ~line:0));
        t (D.name ^ ": clear empties the line") `Quick (fun () ->
            let d = D.create ~n_nodes:4 ~n_lines:1 in
            D.add_sharer d ~line:0 ~node:1;
            D.add_sharer d ~line:0 ~node:3;
            D.clear d ~line:0;
            Alcotest.(check (list int)) "no sharers" []
              (D.sharers d ~line:0);
            Alcotest.(check bool) "well formed" true (D.well_formed d));
      ])
    Directory.all

let suite =
  ( "machine model",
    buffer_cases
    @ [ QCheck_alcotest.to_alcotest prop_pool_well_formed ]
    @ lane_cases @ message_cases @ dir_unit_cases @ dir_props )
