(** FLASH API vocabulary: lane mapping, opcode classes, spec lookup, and
    the corpus writer. *)

let t = Alcotest.test_case

let api_cases =
  [
    t "PI and IO sends own their lanes" `Quick (fun () ->
        Alcotest.(check (option int)) "PI"
          (Some Flash_api.lane_pi)
          (Flash_api.lane_of_send ~macro:"PI_SEND" ~opcode:None);
        Alcotest.(check (option int)) "IO"
          (Some Flash_api.lane_io)
          (Flash_api.lane_of_send ~macro:"IO_SEND" ~opcode:None));
    t "network lane depends on the opcode class" `Quick (fun () ->
        Alcotest.(check (option int)) "request"
          (Some Flash_api.lane_net_request)
          (Flash_api.lane_of_send ~macro:"NI_SEND" ~opcode:(Some "MSG_GET"));
        Alcotest.(check (option int)) "reply"
          (Some Flash_api.lane_net_reply)
          (Flash_api.lane_of_send ~macro:"NI_SEND" ~opcode:(Some "MSG_PUT")));
    t "unknown macro maps to no lane" `Quick (fun () ->
        Alcotest.(check (option int)) "none" None
          (Flash_api.lane_of_send ~macro:"printf" ~opcode:None));
    t "every opcode is classified exactly once" `Quick (fun () ->
        List.iter
          (fun op ->
            Alcotest.(check bool) (op ^ " request xor reply") true
              (List.mem op Flash_api.msg_opcodes_request
              <> List.mem op Flash_api.msg_opcodes_reply))
          (Flash_api.msg_opcodes_request @ Flash_api.msg_opcodes_reply));
    t "spec lookups" `Quick (fun () ->
        let spec =
          {
            Flash_api.p_name = "t";
            p_handlers =
              [
                {
                  Flash_api.h_name = "HW";
                  h_kind = Flash_api.Hw_handler;
                  h_lane_allowance = [| 0; 0; 0; 1 |];
                  h_no_stack = true;
                };
                {
                  Flash_api.h_name = "SW";
                  h_kind = Flash_api.Sw_handler;
                  h_lane_allowance = [| 0; 0; 0; 1 |];
                  h_no_stack = false;
                };
              ];
            p_free_funcs = [];
            p_use_funcs = [];
            p_cond_free_funcs = [];
          }
        in
        Alcotest.(check bool) "HW is handler" true
          (Flash_api.is_handler spec "HW");
        Alcotest.(check bool) "SW is handler" true
          (Flash_api.is_handler spec "SW");
        Alcotest.(check bool) "other is not" false
          (Flash_api.is_handler spec "util");
        Alcotest.(check bool) "kind" true
          (Flash_api.handler_kind spec "SW" = Flash_api.Sw_handler);
        Alcotest.(check bool) "missing is procedure" true
          (Flash_api.handler_kind spec "util" = Flash_api.Procedure));
  ]

let corpus_io_cases =
  [
    t "write_to_dir emits every file" `Slow (fun () ->
        let corpus = Corpus.generate () in
        let dir = Filename.temp_file "corpus" "" in
        Sys.remove dir;
        Corpus.write_to_dir corpus dir;
        List.iter
          (fun (p : Corpus.protocol) ->
            List.iter
              (fun (file, src) ->
                let path = Filename.concat dir file in
                Alcotest.(check bool) (file ^ " exists") true
                  (Sys.file_exists path);
                let ic = open_in_bin path in
                let n = in_channel_length ic in
                let on_disk = really_input_string ic n in
                close_in ic;
                Alcotest.(check int) (file ^ " size")
                  (String.length src) (String.length on_disk))
              p.Corpus.files)
          corpus.Corpus.protocols;
        (* a written file can be read back by the front end *)
        let sample =
          Filename.concat dir (fst (List.hd
            (List.hd corpus.Corpus.protocols).Corpus.files))
        in
        let tu = Frontend.of_file sample in
        Alcotest.(check bool) "parses from disk" true
          (Ast.functions tu <> []));
    t "prelude LOC constant matches the text" `Quick (fun () ->
        Alcotest.(check int) "loc" (Frontend.loc_count Prelude.text)
          Prelude.loc);
  ]

let suite = ("flash api + corpus io", api_cases @ corpus_io_cases)
