(** Aggregated test runner: [dune runtest]. *)

let () =
  (* supervised-worker tests re-exec this binary; serve the socketpair
     instead of running the suite again *)
  Serve.Worker.exit_if_worker ();
  Alcotest.run "metal-flash"
    [
      Test_lexer.suite;
      Test_parser.suite;
      Test_ctype.suite;
      Test_pp.suite;
      Test_cfg.suite;
      Test_pattern.suite;
      Test_engine.suite;
      Test_engine2.suite;
      Test_interproc.suite;
      Test_mdsl.suite;
      Test_metalc.suite;
      Test_checkers.suite;
      Test_checkers2.suite;
      Test_fixer.suite;
      Test_optimizer.suite;
      Test_machine.suite;
      Test_interp.suite;
      Test_corpus.suite;
      Test_sim.suite;
      Test_sim2.suite;
      Test_flashapi.suite;
      Test_mcd.suite;
      Test_prep.suite;
      Test_misc.suite;
      Test_fuzz.suite;
      Test_props.suite;
      Test_obs.suite;
      Test_robust.suite;
      Test_api.suite;
      Test_serve.suite;
    ]
