(** Auto-repair tests: after fixing, the corresponding checker must be
    silent, and the rewritten source must still parse. *)

let t = Alcotest.test_case

let spec_for ?(procs = true) handlers : Flash_api.spec =
  let _ = procs in
  {
    Flash_api.p_name = "test";
    p_handlers =
      List.map
        (fun name ->
          {
            Flash_api.h_name = name;
            h_kind = Flash_api.Hw_handler;
            h_lane_allowance = [| 1; 1; 1; 1 |];
            h_no_stack = false;
          })
        handlers;
    p_free_funcs = [];
    p_use_funcs = [];
    p_cond_free_funcs = [];
  }

let parse src = Frontend.of_strings [ ("t.c", Prelude.text ^ src) ]

(* re-parse through the printer so the fix is a genuine source rewrite *)
let reparse (tus : Ast.tunit list) : Ast.tunit list =
  Frontend.of_strings
    (List.map (fun tu -> (tu.Ast.tu_file, Pp.tunit_to_string tu)) tus)

let cases =
  [
    t "missing hooks are inserted" `Quick (fun () ->
        let spec = spec_for [ "H" ] in
        let tus = parse "void H(void) { x = 1; }\nvoid util(void) { y = 2; }" in
        Alcotest.(check bool) "dirty before" true
          (Exec_restrict.run ~spec tus <> []);
        let fixed = reparse (List.map (Fixer.fix_hooks ~spec) tus) in
        Alcotest.(check int) "clean after" 0
          (List.length (Exec_restrict.run ~spec fixed)));
    t "hook fix keeps existing good prologues" `Quick (fun () ->
        let spec = spec_for [ "H" ] in
        let tus =
          parse "void H(void) { HANDLER_DEFS(); SIM_HANDLER_HOOK(); x = 1; }"
        in
        let fixed = List.map (Fixer.fix_hooks ~spec) tus in
        (* no duplicate prologue statements *)
        let f =
          Option.get (Ast.find_function (List.hd fixed) "H")
        in
        Alcotest.(check int) "body length unchanged" 3
          (List.length f.Ast.f_body));
    t "unsynchronised reads get a wait" `Quick (fun () ->
        let spec = spec_for [ "H" ] in
        let tus =
          parse
            "void H(void) { long a; a = MISCBUS_READ_DB(a, 0); FREE_DB(); }"
        in
        let diags = Buffer_race.run ~spec tus in
        Alcotest.(check int) "one race before" 1 (List.length diags);
        let fixed =
          reparse (List.map (Fixer.fix_races ~diags) tus)
        in
        Alcotest.(check int) "clean after" 0
          (List.length (Buffer_race.run ~spec fixed)));
    t "race fix targets only the flagged statement" `Quick (fun () ->
        let spec = spec_for [ "H" ] in
        let tus =
          parse
            "void H(void) { long a; if (a) { WAIT_FOR_DB_FULL(a); } a = \
             MISCBUS_READ_DB(a, 4); FREE_DB(); }"
        in
        let diags = Buffer_race.run ~spec tus in
        let fixed = reparse (List.map (Fixer.fix_races ~diags) tus) in
        Alcotest.(check int) "clean after" 0
          (List.length (Buffer_race.run ~spec fixed));
        (* exactly one wait was added *)
        let count =
          Cutil.count_calls fixed [ Flash_api.wait_for_db_full ]
        in
        Alcotest.(check int) "waits" 2 count);
    t "leaking return gets a free" `Quick (fun () ->
        let spec = spec_for [ "H" ] in
        let tus =
          parse
            "void H(void) { if (c) { return; } NI_SEND(MSG_NAK, F_NODATA, \
             0, W_NOWAIT, 1, 0); FREE_DB(); }"
        in
        let diags = Buffer_mgmt.run ~spec tus in
        Alcotest.(check int) "one leak before" 1 (List.length diags);
        let fixed = reparse (List.map (Fixer.fix_leaks ~spec ~diags) tus) in
        Alcotest.(check int) "clean after" 0
          (List.length (Buffer_mgmt.run ~spec fixed)));
    t "leak on the fall-off-the-end path" `Quick (fun () ->
        let spec = spec_for [ "H" ] in
        let tus = parse "void H(void) { x = 1; }" in
        let diags = Buffer_mgmt.run ~spec tus in
        let fixed = reparse (List.map (Fixer.fix_leaks ~spec ~diags) tus) in
        Alcotest.(check int) "clean after" 0
          (List.length (Buffer_mgmt.run ~spec fixed)));
    t "the golden buggy leak is repairable" `Quick (fun () ->
        let tus = Golden.program Golden.Buggy in
        let spec = Golden.spec in
        let diags = Buffer_mgmt.run ~spec tus in
        let fixed =
          reparse (List.map (Fixer.fix_leaks ~spec ~diags) tus)
        in
        let remaining = Buffer_mgmt.run ~spec fixed in
        (* the NIInval leak is gone; the NILocalGet double free remains,
           deliberately (Section 11) *)
        Alcotest.(check int) "one report left" 1 (List.length remaining);
        Alcotest.(check string) "it is the double free" "NILocalGet"
          (List.hd remaining).Diag.func);
    t "corpus hook violations all repairable" `Slow (fun () ->
        let corpus = Corpus.generate () in
        let p = Option.get (Corpus.find corpus "dyn_ptr") in
        let fixed =
          reparse
            (List.map (Fixer.fix_hooks ~spec:p.Corpus.spec) p.Corpus.tus)
        in
        Alcotest.(check int) "no exec diags" 0
          (List.length (Exec_restrict.run ~spec:p.Corpus.spec fixed)));
    t "corpus races all repairable" `Slow (fun () ->
        let corpus = Corpus.generate () in
        let p = Option.get (Corpus.find corpus "bitvector") in
        let diags = Buffer_race.run ~spec:p.Corpus.spec p.Corpus.tus in
        Alcotest.(check int) "four before" 4 (List.length diags);
        let fixed =
          reparse (List.map (Fixer.fix_races ~diags) p.Corpus.tus)
        in
        Alcotest.(check int) "none after" 0
          (List.length (Buffer_race.run ~spec:p.Corpus.spec fixed)));
  ]

let suite = ("fixer", cases)
