(** The redundant-synchronisation optimiser: removals are exactly the
    provably redundant waits, and never change what the race checker
    accepts. *)

let t = Alcotest.test_case

let spec =
  {
    Flash_api.p_name = "test";
    p_handlers =
      [
        {
          Flash_api.h_name = "H";
          h_kind = Flash_api.Hw_handler;
          h_lane_allowance = [| 1; 1; 1; 1 |];
          h_no_stack = false;
        };
      ];
    p_free_funcs = [];
    p_use_funcs = [];
    p_cond_free_funcs = [];
  }

let parse src = Frontend.of_strings [ ("t.c", Prelude.text ^ src) ]

let waits tus = Cutil.count_calls tus [ Flash_api.wait_for_db_full ]

let optimize src =
  let tus, report = Optimizer.optimize (parse src) in
  (tus, report)

let cases =
  [
    t "back-to-back waits: the second goes" `Quick (fun () ->
        let tus, report =
          optimize
            "void H(void) { long a; WAIT_FOR_DB_FULL(a); \
             WAIT_FOR_DB_FULL(a); a = MISCBUS_READ_DB(a, 0); FREE_DB(); }"
        in
        Alcotest.(check int) "removed" 1 report.Optimizer.waits_removed;
        Alcotest.(check int) "one left" 1 (waits tus));
    t "a single wait is kept" `Quick (fun () ->
        let _, report =
          optimize
            "void H(void) { long a; WAIT_FOR_DB_FULL(a); a = \
             MISCBUS_READ_DB(a, 0); FREE_DB(); }"
        in
        Alcotest.(check int) "removed" 0 report.Optimizer.waits_removed);
    t "wait reachable unsynchronised is kept" `Quick (fun () ->
        (* only one branch waits early, so the late wait still guards the
           other path *)
        let _, report =
          optimize
            "void H(void) { long a; if (a) { WAIT_FOR_DB_FULL(a); } \
             WAIT_FOR_DB_FULL(a); a = MISCBUS_READ_DB(a, 0); FREE_DB(); }"
        in
        Alcotest.(check int) "removed" 0 report.Optimizer.waits_removed);
    t "wait after both arms waited is redundant" `Quick (fun () ->
        let tus, report =
          optimize
            "void H(void) { long a; if (a) { WAIT_FOR_DB_FULL(a); x = 1; } \
             else { WAIT_FOR_DB_FULL(a); x = 2; } WAIT_FOR_DB_FULL(a); a = \
             MISCBUS_READ_DB(a, 0); FREE_DB(); }"
        in
        Alcotest.(check int) "removed" 1 report.Optimizer.waits_removed;
        Alcotest.(check int) "two left" 2 (waits tus));
    t "independent functions optimised independently" `Quick (fun () ->
        let _, report =
          optimize
            "void H(void) { long a; WAIT_FOR_DB_FULL(a); \
             WAIT_FOR_DB_FULL(a); FREE_DB(); }\n\
             void util(void) { long a; WAIT_FOR_DB_FULL(a); }"
        in
        Alcotest.(check int) "only the redundant one" 1
          report.Optimizer.waits_removed;
        Alcotest.(check int) "one function changed" 1
          report.Optimizer.functions_changed);
    t "golden protocol has no redundant waits" `Quick (fun () ->
        let tus = Golden.program Golden.Clean in
        let _, report = Optimizer.optimize tus in
        Alcotest.(check int) "nothing to shave" 0
          report.Optimizer.waits_removed);
  ]

(* safety: optimisation never changes the race checker's verdict *)
let random_src seed =
  let rng = Rng.create ~seed in
  let g = Skeletons.gctx ~rng ~flavor:Skeletons.Bitvector in
  for _ = 1 to 3 do
    ignore (Skeletons.fresh_local g)
  done;
  let bug = if Rng.bool rng then Skeletons.Race_read else Skeletons.No_bug in
  let body =
    Skeletons.reply_receive_body g ~bug ~pad:(Rng.range rng 1 6)
      ~branches:(Rng.range rng 0 3) ~reads:2
  in
  (* sprinkle extra waits to create removable redundancy *)
  let extra = [ Cb.wait_db (Cb.id "addr"); Cb.wait_db (Cb.id "addr") ] in
  let decls = List.rev_map (fun v -> Cb.decl_long v) g.Skeletons.locals in
  let f =
    Cb.func "H"
      ([ Cb.decl_long "addr"; Cb.decl_long "src" ] @ decls @ body @ extra)
  in
  Pp.tunit_to_string { Ast.tu_file = "t.c"; tu_globals = [ Ast.Gfunc f ] }

let site_set diags =
  List.sort_uniq compare
    (List.map (fun (d : Diag.t) -> (d.Diag.loc, d.Diag.message)) diags)

let prop_optimize_preserves_verdict =
  QCheck.Test.make
    ~name:"optimisation preserves the race checker's diagnostics" ~count:60
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let tus = parse (random_src seed) in
      let before = Buffer_race.run ~spec tus in
      let optimized, _ = Optimizer.optimize tus in
      let after = Buffer_race.run ~spec optimized in
      site_set before = site_set after)

let suite =
  ( "optimizer",
    cases @ [ QCheck_alcotest.to_alcotest prop_optimize_preserves_verdict ] )
