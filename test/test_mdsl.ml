(** The metal concrete-syntax front end, exercised with the paper's own
    figures. *)

let t = Alcotest.test_case

(* Figure 2, verbatim (modulo the ligatures lost in the paper's PDF) *)
let figure2 =
  {|
{ #include "flash-includes.h" }
sm wait_for_db {
  /* Declare two variables 'addr' and 'buf' that can
   * match any integer expression. */
  decl { scalar } addr, buf;

  /* Checker begins in the first state (here 'start'). */
  start:
    { WAIT_FOR_DB_FULL(addr); } ==> stop
  | { MISCBUS_READ_DB(addr, buf); } ==>
      { err("Buffer not synchronized"); }
  ;
}
|}

(* Figure 3, verbatim *)
let figure3 =
  {|
{ #include "flash-includes.h" }
sm msglen_check {
  /* Named patterns specifying message length assignments
   * zero and non-zero values. */
  pat zero_assign =
    { HANDLER_GLOBALS(header.nh.len) = LEN_NODATA } ;
  pat nonzero_assign =
    { HANDLER_GLOBALS(header.nh.len) = LEN_WORD }
  | { HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE } ;

  decl { unsigned } keep, swap, wait, dec, null, type;
  pat send_data =
    { PI_SEND(F_DATA, keep, swap, wait, dec, null) }
  | { IO_SEND(F_DATA, keep, swap, wait, dec, null) }
  | { NI_SEND(type, F_DATA, keep, wait, dec, null) } ;

  pat send_nodata =
    { PI_SEND(F_NODATA, keep, swap, wait, dec, null) }
  | { IO_SEND(F_NODATA, keep, swap, wait, dec, null) }
  | { NI_SEND(type, F_NODATA, keep, wait, dec, null) } ;

  /* Note, rules in the special 'all' state are always run no
   * matter what state the SM is in. */
  all:
    zero_assign ==> zero_len
  | nonzero_assign ==> nonzero_len ;

  /* If we have a zero-length, cannot send data */
  zero_len:
    send_data ==> { err("data send, zero len"); } ;

  /* If we have a non-zero length, must send data */
  nonzero_len:
    send_nodata ==> { err("nodata send, nonzero len"); } ;
}
|}

let run_on metal_src c_src =
  let sm = Mdsl.load metal_src in
  let tus = Frontend.of_strings [ ("t.c", Prelude.text ^ c_src) ] in
  Engine.check sm (`Program tus)

let parse_cases =
  [
    t "Figure 2 parses" `Quick (fun () ->
        let parsed = Mdsl.parse figure2 in
        Alcotest.(check string) "name" "wait_for_db" parsed.Mdsl.sm_name;
        Alcotest.(check int) "decls" 2 (List.length parsed.Mdsl.decls);
        Alcotest.(check int) "states" 1 (List.length parsed.Mdsl.states));
    t "Figure 3 parses" `Quick (fun () ->
        let parsed = Mdsl.parse figure3 in
        Alcotest.(check string) "name" "msglen_check" parsed.Mdsl.sm_name;
        Alcotest.(check int) "named patterns" 4
          (List.length parsed.Mdsl.named_patterns);
        Alcotest.(check int) "states" 2 (List.length parsed.Mdsl.states);
        Alcotest.(check int) "all rules" 2
          (List.length parsed.Mdsl.all_rules));
    t "missing sm keyword rejected" `Quick (fun () ->
        match Mdsl.parse "machine x { }" with
        | exception Mdsl.Parse_error _ -> ()
        | _ -> Alcotest.fail "expected a parse error");
    t "unknown pattern name rejected" `Quick (fun () ->
        match Mdsl.parse "sm x { start: nope ==> stop ; }" with
        | exception Mdsl.Parse_error _ -> ()
        | _ -> Alcotest.fail "expected a parse error");
    t "unknown wildcard kind rejected" `Quick (fun () ->
        match Mdsl.parse "sm x { decl { complex } c; start: { f(c) } ==> stop ; }" with
        | exception Mdsl.Parse_error _ -> ()
        | _ -> Alcotest.fail "expected a parse error");
    t "unsupported action rejected" `Quick (fun () ->
        match
          Mdsl.parse "sm x { start: { f() } ==> { launch_missiles(); } ; }"
        with
        | exception Mdsl.Parse_error _ -> ()
        | _ -> Alcotest.fail "expected a parse error");
  ]

let run_cases =
  [
    t "Figure 2 finds the race" `Quick (fun () ->
        let diags =
          run_on figure2
            "void H(void) { long a; if (a) { WAIT_FOR_DB_FULL(a); } a = \
             MISCBUS_READ_DB(a, 0); }"
        in
        Alcotest.(check int) "one diag" 1 (List.length diags);
        Alcotest.(check string) "message" "Buffer not synchronized"
          (List.hd diags).Diag.message);
    t "Figure 2 is quiet on synchronised reads" `Quick (fun () ->
        Alcotest.(check int) "diags" 0
          (List.length
             (run_on figure2
                "void H(void) { long a; WAIT_FOR_DB_FULL(a); a = \
                 MISCBUS_READ_DB(a, 0); }")));
    t "Figure 3 finds a zero-length data send" `Quick (fun () ->
        let diags =
          run_on figure3
            "void H(void) { HANDLER_GLOBALS(header.nh.len) = LEN_NODATA; \
             NI_SEND(MSG_PUT, F_DATA, 0, W_NOWAIT, 1, 0); }"
        in
        Alcotest.(check int) "one diag" 1 (List.length diags);
        Alcotest.(check string) "message" "data send, zero len"
          (List.hd diags).Diag.message);
    t "Figure 3 finds a nonzero-length nodata send" `Quick (fun () ->
        let diags =
          run_on figure3
            "void H(void) { HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE; \
             PI_SEND(F_NODATA, 0, 0, W_NOWAIT, 1, 0); }"
        in
        Alcotest.(check int) "one diag" 1 (List.length diags));
    t "Figure 3 is quiet on consistent sends" `Quick (fun () ->
        Alcotest.(check int) "diags" 0
          (List.length
             (run_on figure3
                "void H(void) { HANDLER_GLOBALS(header.nh.len) = \
                 LEN_CACHELINE; NI_SEND(MSG_PUT, F_DATA, 0, W_NOWAIT, 1, \
                 0); }")));
    t "the DSL checker agrees with the EDSL on the corpus" `Slow (fun () ->
        (* run the verbatim Figure 3 over bitvector and compare with our
           Msg_length implementation *)
        let corpus = Corpus.generate () in
        let p = Option.get (Corpus.find corpus "bitvector") in
        let dsl_sm = Mdsl.load figure3 in
        let dsl =
          Engine.check dsl_sm (`Program p.Corpus.tus)
        in
        let edsl = Msg_length.run ~spec:p.Corpus.spec p.Corpus.tus in
        Alcotest.(check int) "same diagnostic count" (List.length edsl)
          (List.length dsl);
        List.iter2
          (fun (a : Diag.t) (b : Diag.t) ->
            Alcotest.(check string) "same function" a.Diag.func b.Diag.func)
          (List.sort Diag.compare edsl)
          (List.sort Diag.compare dsl));
  ]

let suite = ("mdsl (metal concrete syntax)", parse_cases @ run_cases)

(* the shipped .metal files load and behave *)
let shipped_cases =
  let load name = Mdsl.load_file (Filename.concat "../../../metal" name) in
  [
    t "shipped wait_for_db.metal finds the bitvector races" `Slow (fun () ->
        let sm = load "wait_for_db.metal" in
        let corpus = Corpus.generate () in
        let p = Option.get (Corpus.find corpus "bitvector") in
        let diags =
          Engine.check sm (`Program p.Corpus.tus)
        in
        Alcotest.(check int) "four races" 4 (List.length diags));
    t "shipped refcount.metal objects to the Section 11 call" `Quick
      (fun () ->
        let sm = load "refcount.metal" in
        let tus =
          Frontend.of_strings
            [
              ( "t.c",
                Prelude.text
                ^ "void H(void) { DB_INC_REFCOUNT(); FREE_DB(); }" );
            ]
        in
        let diags =
          Engine.check sm (`Program tus)
        in
        Alcotest.(check int) "flagged" 1 (List.length diags));
  ]

let suite =
  let name, cases0 = suite in
  (name, cases0 @ shipped_cases)
