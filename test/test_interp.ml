(** Interpreter tests: Clite semantics plus the MAGIC builtins. *)

let t = Alcotest.test_case

(* run [main] in a program and return its result *)
let eval_program ?(name = "main") src : int =
  let tus = Frontend.of_strings [ ("t.c", Prelude.text ^ src) ] in
  let program = Callgraph.build tus in
  let consts = Interp.consts_of_program tus in
  let node = Interp.create_node 0 in
  let env = Interp.make_env ~node ~program ~consts () in
  match Callgraph.find_func program name with
  | Some f -> Interp.call_function env f []
  | None -> Alcotest.fail ("no function " ^ name)

let check_eval name src expected =
  t name `Quick (fun () ->
      Alcotest.(check int) name expected (eval_program src))

let semantics_cases =
  [
    check_eval "arithmetic" "long main(void) { return 2 + 3 * 4; }" 14;
    check_eval "division truncates"
      "long main(void) { return 7 / 2; }" 3;
    check_eval "division by zero yields zero"
      "long main(void) { return 7 / (1 - 1); }" 0;
    check_eval "bitwise ops"
      "long main(void) { return (5 & 3) | (1 << 4); }" 17;
    check_eval "comparison returns 0/1"
      "long main(void) { return (3 < 4) + (4 < 3); }" 1;
    check_eval "short circuit and"
      "long side; long bump(void) { side = side + 1; return 1; }\n\
       long main(void) { long r; side = 0; r = 0 && bump(); return side; }"
      0;
    check_eval "short circuit or"
      "long side; long bump(void) { side = side + 1; return 1; }\n\
       long main(void) { long r; side = 0; r = 1 || bump(); return side; }"
      0;
    check_eval "if else"
      "long main(void) { if (2 > 1) { return 10; } else { return 20; } }" 10;
    check_eval "while loop"
      "long main(void) { long i; long s; i = 0; s = 0; while (i < 5) { s = \
       s + i; i = i + 1; } return s; }"
      10;
    check_eval "for loop with break"
      "long main(void) { long i; long s; s = 0; for (i = 0; i < 100; i++) { \
       if (i == 4) { break; } s = s + 1; } return s; }"
      4;
    check_eval "continue skips"
      "long main(void) { long i; long s; s = 0; for (i = 0; i < 6; i++) { \
       if (i % 2) { continue; } s = s + 1; } return s; }"
      3;
    check_eval "do-while runs once"
      "long main(void) { long n; n = 0; do { n = n + 1; } while (0); return \
       n; }"
      1;
    check_eval "switch dispatch"
      "long main(void) { switch (2) { case 1: return 10; case 2: return 20; \
       default: return 30; } }"
      20;
    check_eval "switch default"
      "long main(void) { switch (9) { case 1: return 10; default: return \
       30; } }"
      30;
    check_eval "switch fall-through"
      "long main(void) { long n; n = 0; switch (1) { case 1: n = n + 1; \
       case 2: n = n + 10; break; case 3: n = n + 100; } return n; }"
      11;
    check_eval "function calls with arguments"
      "long add(long a, long b) { return a + b; }\n\
       long main(void) { return add(3, add(4, 5)); }"
      12;
    check_eval "recursion"
      "long fib(long n) { if (n < 2) { return n; } return fib(n - 1) + \
       fib(n - 2); }\n\
       long main(void) { return fib(10); }"
      55;
    check_eval "globals persist across calls"
      "long g; void bump(void) { g = g + 1; }\n\
       long main(void) { g = 0; bump(); bump(); bump(); return g; }"
      3;
    check_eval "enum constants resolve"
      "long main(void) { return LEN_CACHELINE + F_DATA; }" 17;
    check_eval "pre and post increment"
      "long main(void) { long i; long a; i = 5; a = i++; return a * 100 + \
       i + (++i); }"
      (* a=5, i becomes 6, then ++i makes 7: 500 + 6 + 7 *)
      513;
    check_eval "ternary"
      "long main(void) { return 1 ? 7 : 9; }" 7;
    check_eval "scoping: inner block shadows"
      "long main(void) { long x; x = 1; if (1) { long x; x = 99; } return \
       x; }"
      1;
    t "infinite loop runs out of fuel, not forever" `Quick (fun () ->
        let tus =
          Frontend.of_strings
            [ ("t.c", Prelude.text ^ "void spin(void) { while (1) { x = x + 1; } }") ]
        in
        let program = Callgraph.build tus in
        let consts = Interp.consts_of_program tus in
        let node = Interp.create_node 0 in
        let f = Option.get (Callgraph.find_func program "spin") in
        let faults, _ =
          Interp.run_handler ~max_steps:5_000 ~node ~program ~consts f
        in
        Alcotest.(check bool) "fuel fault" true
          (List.exists
             (function Interp.F_fatal _ -> true | _ -> false)
             faults));
  ]

(* builtin semantics against a fresh node *)
let run_handler_src src ~name =
  let tus = Frontend.of_strings [ ("t.c", Prelude.text ^ src) ] in
  let program = Callgraph.build tus in
  let consts = Interp.consts_of_program tus in
  let node = Interp.create_node 0 in
  (* hardware hands the handler a buffer *)
  node.Interp.current_buffer <- Buffers.allocate node.Interp.buffers;
  let f = Option.get (Callgraph.find_func program name) in
  let faults, sent = Interp.run_handler ~node ~program ~consts f in
  (node, faults, sent)

let builtin_cases =
  [
    t "NI_SEND builds a message from the header" `Quick (fun () ->
        let _, faults, sent =
          run_handler_src ~name:"H"
            "void H(void) { HANDLER_GLOBALS(header.nh.dest) = 2; \
             HANDLER_GLOBALS(header.nh.len) = LEN_NODATA; NI_SEND(MSG_NAK, \
             F_NODATA, 0, W_NOWAIT, 1, 0); FREE_DB(); }"
        in
        Alcotest.(check int) "no faults" 0 (List.length faults);
        match sent with
        | [ m ] ->
          Alcotest.(check string) "opcode" "MSG_NAK" m.Message.opcode;
          Alcotest.(check int) "dest" 2 m.Message.dst;
          Alcotest.(check int) "reply lane" Flash_api.lane_net_reply
            m.Message.lane
        | _ -> Alcotest.fail "expected one send");
    t "inconsistent length records a fault" `Quick (fun () ->
        let _, faults, _ =
          run_handler_src ~name:"H"
            "void H(void) { HANDLER_GLOBALS(header.nh.len) = LEN_NODATA; \
             NI_SEND(MSG_PUT, F_DATA, 0, W_NOWAIT, 1, 0); FREE_DB(); }"
        in
        Alcotest.(check bool) "length fault" true
          (List.exists
             (function Interp.F_len_mismatch _ -> true | _ -> false)
             faults));
    t "double free is caught at run time" `Quick (fun () ->
        let _, faults, _ =
          run_handler_src ~name:"H" "void H(void) { FREE_DB(); FREE_DB(); }"
        in
        Alcotest.(check bool) "double free" true
          (List.exists
             (function
               | Interp.F_buffer (Buffers.Double_free _) -> true
               | _ -> false)
             faults));
    t "handler globals read/write by path" `Quick (fun () ->
        let node, _, _ =
          run_handler_src ~name:"H"
            "void H(void) { HANDLER_GLOBALS(dirEntry.vector) = 42; FREE_DB(); }"
        in
        Alcotest.(check int) "written" 42
          (Interp.global node "dirEntry.vector"));
    t "buffer write then read through MISCBUS" `Quick (fun () ->
        let node, faults, _ =
          run_handler_src ~name:"H"
            "void H(void) { long v; MISCBUS_WRITE_DB(0, 3, 99); \
             WAIT_FOR_DB_FULL(0); v = MISCBUS_READ_DB(0, 3); \
             HANDLER_GLOBALS(header.nh.misc) = v; FREE_DB(); }"
        in
        Alcotest.(check int) "no faults" 0 (List.length faults);
        Alcotest.(check int) "read back" 99
          (Interp.global node "header.nh.misc"));
    t "allocation failure path" `Quick (fun () ->
        (* exhaust the pool first, then ALLOCATE_DB must fail the check *)
        let tus =
          Frontend.of_strings
            [
              ( "t.c",
                Prelude.text
                ^ "void H(void) { long b; b = ALLOCATE_DB(); if \
                   (ALLOC_FAILED(b)) { HANDLER_GLOBALS(header.nh.misc) = \
                   77; return; } FREE_DB(); }" );
            ]
        in
        let program = Callgraph.build tus in
        let consts = Interp.consts_of_program tus in
        let node = Interp.create_node ~buffer_count:1 0 in
        node.Interp.current_buffer <- Buffers.allocate node.Interp.buffers;
        let f = Option.get (Callgraph.find_func program "H") in
        let _ = Interp.run_handler ~node ~program ~consts f in
        Alcotest.(check int) "took the failure branch" 77
          (Interp.global node "header.nh.misc"));
  ]

let suite = ("interp", semantics_cases @ builtin_cases)
