(** The Mcheck_api session facade: equivalence with the raw pipeline,
    selection, outcome classification, statistics, the whole-request
    memo, and the deprecated one-shot shim. *)

let t = Alcotest.test_case

let buggy_src =
  "void H(void) { HANDLER_GLOBALS(header.nh.len) = LEN_NODATA; \
   NI_SEND(MSG_PUT, F_DATA, 0, W_NOWAIT, 1, 0); }"

let clean_src =
  "void H(void) { HANDLER_DEFS(); SIM_HANDLER_HOOK(); FREE_DB(); }"

let render report =
  String.concat ""
    (List.map
       (Mcheck_api.render_diag
          { Mcheck_api.ro_explain = false; ro_verbose = false; ro_quiet = false })
       (Mcheck_api.report_diags report))

let with_session ?config f =
  let s = Mcheck_api.Session.create ?config () in
  Fun.protect ~finally:(fun () -> Mcheck_api.Session.close s) (fun () -> f s)

let write_tmp name contents =
  let path = Filename.concat (Filename.get_temp_dir_name ()) name in
  Mcheck_api.write_file path contents;
  path

let session_cases =
  [
    t "check_buffer matches the raw fused pipeline" `Quick (fun () ->
        let tus =
          Frontend.of_strings [ ("b.c", Prelude.text ^ buggy_src) ]
        in
        let expected =
          Registry.run_all_fused ~spec:(Mcheck_api.default_spec tus) tus
        in
        with_session (fun s ->
            let r =
              Mcheck_api.Session.check_buffer s ~name:"b.c"
                ~contents:buggy_src
            in
            Alcotest.(check string)
              "same diagnostics"
              (String.concat "\n"
                 (List.concat_map
                    (fun (n, ds) -> n :: List.map Diag.to_string ds)
                    (List.filter (fun (_, ds) -> ds <> []) expected)))
              (String.concat "\n"
                 (List.concat_map
                    (fun (n, ds) -> n :: List.map Diag.to_string ds)
                    (List.filter (fun (_, ds) -> ds <> [])
                       r.Mcheck_api.r_results)))));
    t "check_files equals check_buffer on the same bytes" `Quick (fun () ->
        let path = write_tmp "api_eq.c" buggy_src in
        with_session (fun s ->
            let from_file = Mcheck_api.Session.check_files s [ path ] in
            let from_buf =
              Mcheck_api.Session.check_buffer s ~name:path
                ~contents:buggy_src
            in
            Alcotest.(check string)
              "same render" (render from_file) (render from_buf);
            Alcotest.(check int)
              "same findings" from_file.Mcheck_api.r_findings
              from_buf.Mcheck_api.r_findings));
    t "outcomes: clean 0, findings 1, garbage partial, missing unusable"
      `Quick (fun () ->
        with_session (fun s ->
            let clean =
              Mcheck_api.Session.check_buffer s ~name:"c.c"
                ~contents:clean_src
            in
            Alcotest.(check int) "clean exit" 0
              (Robust.exit_code clean.Mcheck_api.r_outcome);
            let buggy =
              Mcheck_api.Session.check_buffer s ~name:"b.c"
                ~contents:buggy_src
            in
            Alcotest.(check int) "findings exit" 1
              (Robust.exit_code buggy.Mcheck_api.r_outcome);
            (* recovered-garbage alongside an intact function: partial *)
            let partial =
              Mcheck_api.Session.check_buffer s ~name:"g.c"
                ~contents:(clean_src ^ " @#$ not C at all")
            in
            Alcotest.(check int) "partial exit" 2
              (Robust.exit_code partial.Mcheck_api.r_outcome);
            let missing =
              Mcheck_api.Session.check_files s [ "/nonexistent/nope.c" ]
            in
            Alcotest.(check int) "unusable exit" 3
              (Robust.exit_code missing.Mcheck_api.r_outcome)));
    t "selection filters findings but keeps internal entries" `Quick
      (fun () ->
        let config =
          { Mcheck_api.default_config with checkers = [ "buffer_race" ] }
        in
        with_session ~config (fun s ->
            let r =
              Mcheck_api.Session.check_buffer s ~name:"b.c"
                ~contents:buggy_src
            in
            Alcotest.(check int) "msg_length filtered out" 0
              r.Mcheck_api.r_findings;
            List.iter
              (fun (name, _) ->
                Alcotest.(check bool)
                  (name ^ " allowed") true
                  (String.equal name "buffer_race"
                  || String.equal name "internal"))
              r.Mcheck_api.r_results));
    t "per-call checkers override beats the session default" `Quick
      (fun () ->
        with_session (fun s ->
            let all =
              Mcheck_api.Session.check_buffer s ~name:"b.c"
                ~contents:buggy_src
            in
            let only =
              Mcheck_api.Session.check_buffer
                ~checkers:[ "buffer_race" ] s ~name:"b.c"
                ~contents:buggy_src
            in
            Alcotest.(check bool) "default finds the bug" true
              (all.Mcheck_api.r_findings > 0);
            Alcotest.(check int) "override filters it" 0
              only.Mcheck_api.r_findings));
    t "stats count requests, files, findings" `Quick (fun () ->
        with_session (fun s ->
            ignore
              (Mcheck_api.Session.check_buffer s ~name:"b.c"
                 ~contents:buggy_src);
            ignore
              (Mcheck_api.Session.check_buffer s ~name:"c.c"
                 ~contents:clean_src);
            let st = Mcheck_api.Session.stats s in
            Alcotest.(check int) "requests" 2
              st.Mcheck_api.Session.requests;
            Alcotest.(check int) "files" 2
              st.Mcheck_api.Session.files_checked;
            Alcotest.(check bool) "findings counted" true
              (st.Mcheck_api.Session.findings > 0)));
    t "incremental memo answers identical re-checks" `Quick (fun () ->
        let config =
          { Mcheck_api.default_config with incremental = true }
        in
        with_session ~config (fun s ->
            let r1 =
              Mcheck_api.Session.check_buffer s ~name:"b.c"
                ~contents:buggy_src
            in
            let hits0 =
              (Mcheck_api.Session.stats s).Mcheck_api.Session.cache_hits
            in
            let r2 =
              Mcheck_api.Session.check_buffer s ~name:"b.c"
                ~contents:buggy_src
            in
            let hits1 =
              (Mcheck_api.Session.stats s).Mcheck_api.Session.cache_hits
            in
            Alcotest.(check string) "identical" (render r1) (render r2);
            Alcotest.(check bool) "memo hit recorded" true (hits1 > hits0);
            (* different bytes must miss *)
            let r3 =
              Mcheck_api.Session.check_buffer s ~name:"b.c"
                ~contents:clean_src
            in
            Alcotest.(check bool) "distinct input, distinct report" true
              (r3.Mcheck_api.r_findings <> r1.Mcheck_api.r_findings)));
    t "check_jobs matches per-protocol fused runs" `Quick (fun () ->
        let corpus = Corpus.generate () in
        let jobs = Mcheck_api.corpus_jobs corpus in
        let expected =
          List.map
            (fun (j : Mcd.job) ->
              Registry.run_all_fused ~spec:j.Mcd.spec j.Mcd.tus)
            jobs
        in
        with_session (fun s ->
            let results, report = Mcheck_api.Session.check_jobs s jobs in
            Alcotest.(check string)
              "same rendering"
              (Mcheck_api.render_results expected)
              (Mcheck_api.render_results results);
            Alcotest.(check bool) "corpus has findings" true
              (report.Mcheck_api.r_findings > 0)));
    t "strict parse failure raises Robust_exit" `Quick (fun () ->
        let config = { Mcheck_api.default_config with strict = true } in
        with_session ~config (fun s ->
            match
              Mcheck_api.Session.check_buffer s ~name:"g.c"
                ~contents:"@#$ not C"
            with
            | _ -> Alcotest.fail "expected Robust_exit"
            | exception Mcheck_api.Robust_exit o ->
              Alcotest.(check int) "unusable" 3 (Robust.exit_code o)));
    t "default_spec takes void/no-arg functions as handlers" `Quick
      (fun () ->
        let tus =
          Frontend.of_strings
            [
              ( "s.c",
                Prelude.text
                ^ "void H(void) { } int helper(void) { return 1; } void \
                   takes_arg(int x) { x = x; }" );
            ]
        in
        let spec = Mcheck_api.default_spec tus in
        Alcotest.(check (list string))
          "handlers" [ "H" ]
          (List.map
             (fun h -> h.Flash_api.h_name)
             spec.Flash_api.p_handlers));
    t "one-shot session check of a clean file" `Quick (fun () ->
        let path = write_tmp "api_shim.c" clean_src in
        let s = Mcheck_api.Session.create () in
        let r =
          Fun.protect
            ~finally:(fun () -> Mcheck_api.Session.close s)
            (fun () -> Mcheck_api.Session.check_files s [ path ])
        in
        Alcotest.(check int) "clean" 0
          (Robust.exit_code r.Mcheck_api.r_outcome));
  ]

let suite = ("api", session_cases)
