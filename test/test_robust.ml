(** The hardened pipeline: parse recovery, crash-safe cache, fault
    barriers, budgets, dead workers, and the exit-code policy.

    The unit tests pin each containment tier directly; the qcheck
    properties are totality statements (a mutated source never crashes
    the front end, a mutated cache container never crashes the loader);
    the per-class mini-campaigns run the {!Faultinject} harness itself
    so its invariants — no uncaught exception, deterministic remainder —
    are exercised on every [dune runtest]. *)

let t = Alcotest.test_case

(* ------------------------------------------------------------------ *)
(* A small program with a known finding and a clean remainder           *)
(* ------------------------------------------------------------------ *)

let spec_for tus =
  {
    Flash_api.p_name = "robust";
    p_handlers =
      List.concat_map
        (fun tu ->
          List.filter_map
            (fun (f : Ast.func) ->
              if Ctype.equal f.Ast.f_ret Ctype.Void && f.Ast.f_params = []
              then
                Some
                  {
                    Flash_api.h_name = f.Ast.f_name;
                    h_kind = Flash_api.Hw_handler;
                    h_lane_allowance = [| 1; 1; 1; 1 |];
                    h_no_stack = false;
                  }
              else None)
            (Ast.functions tu))
        tus;
    p_free_funcs = [];
    p_use_funcs = [];
    p_cond_free_funcs = [];
  }

let leaky = "void leaky(void) {\n  long b;\n  b = ALLOCATE_BUF();\n}\n"

let clean =
  "void tidy(void) {\n  long b;\n  b = ALLOCATE_BUF();\n  FREE_BUF(b);\n}\n"

let parse_sources srcs =
  Frontend.parse_strings
    (List.map (fun (n, s) -> (n, Prelude.text ^ s)) srcs)

let func_names tus =
  List.concat_map
    (fun tu -> List.map (fun (f : Ast.func) -> f.Ast.f_name) (Ast.functions tu))
  tus
  |> List.sort String.compare

let render results =
  results
  |> List.concat_map (fun (name, ds) ->
         List.map (fun d -> name ^ "|" ^ Diag.to_string d) ds)
  |> List.sort String.compare

(* ------------------------------------------------------------------ *)
(* Exit-code policy                                                    *)
(* ------------------------------------------------------------------ *)

let test_classify () =
  let c u d f = Robust.classify ~usable:u ~degraded:d ~has_findings:f in
  Alcotest.(check int) "clean" 0 (Robust.exit_code (c true false false));
  Alcotest.(check int) "findings" 1 (Robust.exit_code (c true false true));
  Alcotest.(check int) "partial" 2 (Robust.exit_code (c true true false));
  (* partial takes precedence over findings *)
  Alcotest.(check int) "partial+findings" 2 (Robust.exit_code (c true true true));
  Alcotest.(check int) "unusable" 3 (Robust.exit_code (c false true true));
  Alcotest.(check bool) "internal diag" true
    (Robust.is_internal
       (Diag.make ~checker:"parse" ~loc:Loc.none ~func:"<f>" "x"));
  Alcotest.(check bool) "finding diag" false
    (Robust.is_internal
       (Diag.make ~checker:"buffer_mgmt" ~loc:Loc.none ~func:"<f>" "x"))

(* ------------------------------------------------------------------ *)
(* Parse recovery                                                      *)
(* ------------------------------------------------------------------ *)

let test_recovery_keeps_neighbours () =
  let garbage = "void broken(void) { long x; x = @#$ ;;; }\n" in
  let tus, diags = parse_sources [ ("r.c", clean ^ garbage ^ leaky) ] in
  let names = func_names tus in
  Alcotest.(check bool) "tidy survives" true (List.mem "tidy" names);
  Alcotest.(check bool) "leaky survives" true (List.mem "leaky" names);
  Alcotest.(check bool) "recovery reported" true (diags <> []);
  List.iter
    (fun (d : Diag.t) ->
      Alcotest.(check bool) "reported under lex/parse" true
        (Robust.is_internal d))
    diags;
  (* the surviving functions still check exactly as if alone *)
  let spec = spec_for tus in
  let recovered = Registry.run_all_fused ~spec tus in
  let alone, _ = parse_sources [ ("r.c", clean ^ leaky) ] in
  let solo = Registry.run_all_fused ~spec:(spec_for alone) alone in
  (* location-free comparison: the garbage region shifts line numbers
     below it, but checker, function, severity, and message survive *)
  let keys results =
    results
    |> List.concat_map (fun (n, ds) ->
           if List.mem n Robust.internal_checkers then []
           else List.map Diag.key ds)
    |> List.sort String.compare
  in
  Alcotest.(check (list string)) "remainder identical" (keys solo)
    (keys recovered)

let test_mdsl_error_located () =
  match Mdsl.parse "sm w {\n  decl { scalar } a;\n  start: ???\n}" with
  | _ -> Alcotest.fail "expected a parse error"
  | exception Mdsl.Parse_error (_, loc) ->
    Alcotest.(check bool) "location attached" false (Loc.is_none loc);
    Alcotest.(check string) "file" "<metal>" loc.Loc.file

let prop_parse_total =
  QCheck.Test.make ~name:"mutated sources never crash the front end"
    ~count:200
    QCheck.(triple small_nat small_nat bool)
    (fun (at, len, truncate) ->
      let src = Prelude.text ^ clean ^ leaky in
      let at = at * 37 mod String.length src in
      let mutated =
        if truncate then String.sub src 0 at
        else
          String.sub src 0 at
          ^ String.init (1 + (len mod 7)) (fun i ->
                "@#${;)\"".[i mod 7])
          ^ String.sub src at (String.length src - at)
      in
      let tus, _ = Frontend.parse_strings [ ("m.c", mutated) ] in
      (* and the surviving remainder is checkable *)
      ignore (Registry.run_all_fused ~spec:(spec_for tus) tus);
      true)

(* ------------------------------------------------------------------ *)
(* Crash-safe cache                                                    *)
(* ------------------------------------------------------------------ *)

let with_container f =
  let tus, _ = parse_sources [ ("c.c", clean ^ leaky) ] in
  let spec = spec_for tus in
  let cache = Mcd_cache.create () in
  let _ = Mcd.check_corpus ~cache ~jobs:1 ~spec tus in
  let path = Filename.temp_file "test_robust" ".cache" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Mcd_cache.save cache path;
      let ic = open_in_bin path in
      let data =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      f ~path ~data ~entries:(Mcd_cache.size cache))

let rewrite path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

let test_cache_roundtrip () =
  with_container (fun ~path ~data:_ ~entries ->
      Alcotest.(check bool) "cache populated" true (entries > 0);
      Alcotest.(check int) "round-trip warm" entries
        (Mcd_cache.size (Mcd_cache.load path)))

let test_cache_corrupt_tail_cold () =
  with_container (fun ~path ~data ~entries:_ ->
      rewrite path (String.sub data 0 (String.length data - 3));
      Alcotest.(check int) "truncated tail loads cold" 0
        (Mcd_cache.size (Mcd_cache.load path)))

let test_cache_missing_cold () =
  Alcotest.(check int) "missing file loads cold" 0
    (Mcd_cache.size (Mcd_cache.load "/nonexistent/robust.cache"))

let prop_cache_corruption_total =
  QCheck.Test.make
    ~name:"a flipped or truncated cache container loads cold, never crashes"
    ~count:60
    QCheck.(pair small_nat bool)
    (fun (at, truncate) ->
      with_container (fun ~path ~data ~entries:_ ->
          let at = at * 131 mod String.length data in
          let mutated =
            if truncate then String.sub data 0 at
            else begin
              let b = Bytes.of_string data in
              Bytes.set b at
                (Char.chr (Char.code (Bytes.get b at) lxor 0xFF));
              Bytes.to_string b
            end
          in
          rewrite path mutated;
          (* never raises, and never pretends corrupt data is a hit *)
          Mcd_cache.size (Mcd_cache.load path) = 0))

(* ------------------------------------------------------------------ *)
(* Checker fault barrier                                               *)
(* ------------------------------------------------------------------ *)

let with_fault ~checker ~func f =
  Engine.set_fault_hook
    (Some (fun ~checker:c ~func:fn -> c = checker && fn = func));
  Fun.protect ~finally:(fun () -> Engine.set_fault_hook None) f

let test_fused_fault_isolated () =
  let tus, _ = parse_sources [ ("f.c", clean ^ leaky) ] in
  let spec = spec_for tus in
  let baseline = Registry.run_all_fused ~spec tus in
  let faulted =
    with_fault ~checker:"buffer_mgmt" ~func:"tidy" (fun () ->
        Registry.run_all_fused ~spec tus)
  in
  let internal = List.assoc_opt "internal" faulted in
  Alcotest.(check bool) "internal entry present" true (internal <> None);
  Alcotest.(check bool) "internal entry non-empty" true
    (Option.get internal <> []);
  (* leaky's finding is still there, verbatim *)
  let on_func fn results =
    results
    |> List.concat_map (fun (n, ds) ->
           if List.mem n Robust.internal_checkers then []
           else
             List.filter_map
               (fun (d : Diag.t) ->
                 if String.equal d.Diag.func fn then
                   Some (n ^ "|" ^ Diag.to_string d)
                 else None)
               ds)
    |> List.sort String.compare
  in
  Alcotest.(check (list string)) "other function untouched"
    (on_func "leaky" baseline) (on_func "leaky" faulted)

let test_mcd_fault_isolated () =
  let tus, _ = parse_sources [ ("f.c", clean ^ leaky) ] in
  let spec = spec_for tus in
  let baseline, _ = Mcd.check_corpus ~jobs:1 ~spec tus in
  let results, stats =
    with_fault ~checker:"buffer_mgmt" ~func:"tidy" (fun () ->
        Mcd.check_corpus ~jobs:2 ~spec tus)
  in
  Alcotest.(check bool) "unit reported faulted" true
    (stats.Mcd.units_faulted > 0);
  Alcotest.(check bool) "internal entry present" true
    (List.assoc_opt "internal" results <> None);
  let strip rs =
    List.filter (fun (n, _) -> not (List.mem n Robust.internal_checkers)) rs
  in
  (* everything except the faulted (checker, function) pair matches; the
     faulted pair degrades, so compare the other checkers wholesale *)
  let except_buffers rs =
    List.filter (fun (n, _) -> not (String.equal n "buffer_mgmt")) (strip rs)
  in
  Alcotest.(check (list string)) "other checkers byte-identical"
    (render (except_buffers baseline)) (render (except_buffers results))

let test_clean_path_unchanged () =
  let tus, _ = parse_sources [ ("f.c", clean ^ leaky) ] in
  let spec = spec_for tus in
  Alcotest.(check (list string)) "guarded = unguarded on a clean run"
    (render (Registry.run_all_fused ~guard:false ~spec tus))
    (render (Registry.run_all_fused ~guard:true ~spec tus))

(* ------------------------------------------------------------------ *)
(* Budgets and dead workers                                            *)
(* ------------------------------------------------------------------ *)

let test_budget_exhaustion_contained () =
  let tus, _ = parse_sources [ ("b.c", clean ^ leaky) ] in
  let spec = spec_for tus in
  let results, stats =
    Mcd.check_corpus
      ~budget:{ Engine.fuel = Some 1; deadline_ms = None }
      ~jobs:1 ~spec tus
  in
  Alcotest.(check bool) "units faulted" true (stats.Mcd.units_faulted > 0);
  Alcotest.(check bool) "reported as internal" true
    (match List.assoc_opt "internal" results with
    | Some (_ :: _) -> true
    | _ -> false)

let test_ample_budget_is_noop () =
  let tus, _ = parse_sources [ ("b.c", clean ^ leaky) ] in
  let spec = spec_for tus in
  let plain, _ = Mcd.check_corpus ~jobs:1 ~spec tus in
  let budgeted, stats =
    Mcd.check_corpus
      ~budget:{ Engine.fuel = Some 1_000_000; deadline_ms = Some 60_000.0 }
      ~jobs:1 ~spec tus
  in
  Alcotest.(check int) "no unit faulted" 0 stats.Mcd.units_faulted;
  Alcotest.(check (list string)) "identical output" (render plain)
    (render budgeted)

let test_dead_worker_reclaimed () =
  let tus, _ = parse_sources [ ("w.c", clean ^ leaky) ] in
  let spec = spec_for tus in
  let baseline, _ = Mcd.check_corpus ~jobs:2 ~spec tus in
  (* every worker dies at its first claim; the coordinator sweep then
     owns the whole task list, so the re-claim path runs deterministically *)
  Mcd_pool.set_test_kill (Some (fun ~worker:_ ~task:_ -> true));
  let results, stats =
    Fun.protect
      ~finally:(fun () -> Mcd_pool.set_test_kill None)
      (fun () -> Mcd.check_corpus ~jobs:2 ~spec tus)
  in
  Alcotest.(check bool) "crash recorded" true (stats.Mcd.workers_crashed > 0);
  Alcotest.(check (list string)) "orphans re-claimed, output identical"
    (render baseline) (render results)

(* ------------------------------------------------------------------ *)
(* The harness turned on itself: one mini-campaign per class            *)
(* ------------------------------------------------------------------ *)

let test_campaign klass () =
  let s = Faultinject.campaign ~count:24 ~classes:[ klass ] () in
  List.iter
    (fun (o : Faultinject.outcome) ->
      Alcotest.failf "injection #%d (%s): %s" o.Faultinject.index
        (Faultinject.fault_to_string o.Faultinject.fault)
        o.Faultinject.detail)
    s.Faultinject.failures;
  Alcotest.(check int) "all injections ran" 24 s.Faultinject.total

let suite =
  ( "robust",
    [
      t "exit-code policy" `Quick test_classify;
      t "parse recovery keeps neighbouring functions" `Quick
        test_recovery_keeps_neighbours;
      t "metal parse errors carry a location" `Quick test_mdsl_error_located;
      QCheck_alcotest.to_alcotest prop_parse_total;
      t "cache save/load round-trips warm" `Quick test_cache_roundtrip;
      t "corrupt cache tail loads cold" `Quick test_cache_corrupt_tail_cold;
      t "missing cache file loads cold" `Quick test_cache_missing_cold;
      QCheck_alcotest.to_alcotest prop_cache_corruption_total;
      t "fused barrier isolates a crashing checker" `Quick
        test_fused_fault_isolated;
      t "mcd barrier isolates a crashing checker" `Quick
        test_mcd_fault_isolated;
      t "fault barrier is invisible on the clean path" `Quick
        test_clean_path_unchanged;
      t "an exhausted budget degrades, is reported" `Quick
        test_budget_exhaustion_contained;
      t "an ample budget changes nothing" `Quick test_ample_budget_is_noop;
      t "a dead worker's units are re-claimed" `Quick
        test_dead_worker_reclaimed;
      t "campaign: parser faults" `Quick
        (test_campaign Faultinject.Parser);
      t "campaign: cache faults" `Quick (test_campaign Faultinject.Cache);
      t "campaign: checker faults" `Quick
        (test_campaign Faultinject.Checker);
      t "campaign: budget faults" `Quick (test_campaign Faultinject.Budget);
    ] )
