(** Parser unit tests plus print/parse round-trip properties. *)

let t = Alcotest.test_case

let parse_expr s = Parser.parse_expr_string s
let show_expr e = Pp.expr_to_string e

let check_expr name src expected =
  t name `Quick (fun () ->
      Alcotest.(check string) name expected (show_expr (parse_expr src)))

let parse_unit src = Parser.parse_string ~file:"test.c" src

let first_func src =
  match Ast.functions (parse_unit src) with
  | f :: _ -> f
  | [] -> Alcotest.fail "no function parsed"

let expr_cases =
  [
    (* precedence comes out in the explicit parentheses the printer adds *)
    check_expr "mul binds tighter" "1 + 2 * 3" "1 + (2 * 3)";
    check_expr "left assoc minus" "1 - 2 - 3" "(1 - 2) - 3";
    check_expr "shift vs plus" "a << 2 + 1" "a << (2 + 1)";
    check_expr "cmp vs bitand" "a & b == c" "a & (b == c)";
    check_expr "logic chain" "a && b || c && d" "(a && b) || (c && d)";
    check_expr "assign right assoc" "a = b = c" "a = b = c";
    check_expr "op-assign" "a += b * 2" "a += (b * 2)";
    check_expr "ternary" "a ? b : c ? d : e" "a ? b : (c ? d : e)";
    check_expr "unary minus" "-a * b" "(-a) * b";
    check_expr "deref field" "(*p).f" "(*p).f";
    check_expr "arrow chain" "p->q->r" "p->q->r";
    check_expr "index call" "f(x)[2]" "f(x)[2]";
    check_expr "nested call" "g(f(1, 2), 3)" "g(f(1, 2), 3)";
    check_expr "cast" "(long)x + 1" "((long)x) + 1";
    check_expr "sizeof type" "sizeof(int)" "sizeof(int)";
    check_expr "sizeof expr" "sizeof(a + b)" "sizeof(a + b)";
    check_expr "address of" "&x" "&x";
    check_expr "comma" "a, b" "a, b";
    check_expr "string concat" "\"a\" \"b\"" "\"ab\"";
  ]

let stmt_cases =
  [
    t "if-else dangling binds to nearest" `Quick (fun () ->
        let f =
          first_func
            "void f(void) { if (a) if (b) x = 1; else x = 2; }"
        in
        match f.Ast.f_body with
        | [ { Ast.sdesc = Ast.Sif (_, then_s, None); _ } ] -> (
          match then_s.Ast.sdesc with
          | Ast.Sif (_, _, Some _) -> ()
          | _ -> Alcotest.fail "inner if should carry the else")
        | _ -> Alcotest.fail "outer if should have no else");
    t "for loop with decl" `Quick (fun () ->
        let f = first_func "void f(void) { for (int i = 0; i < 3; i++) x++; }" in
        match f.Ast.f_body with
        | [ { Ast.sdesc = Ast.Sfor (Some (Ast.Fi_decl d), Some _, Some _, _); _ } ]
          ->
          Alcotest.(check string) "loop var" "i" d.Ast.v_name
        | _ -> Alcotest.fail "expected a for statement");
    t "switch with cases" `Quick (fun () ->
        let f =
          first_func
            "void f(void) { switch (x) { case 1: a(); break; default: b(); } }"
        in
        match f.Ast.f_body with
        | [ { Ast.sdesc = Ast.Sswitch (_, body); _ } ] -> (
          match body.Ast.sdesc with
          | Ast.Sblock stmts ->
            let cases =
              List.filter
                (fun s ->
                  match s.Ast.sdesc with
                  | Ast.Scase _ | Ast.Sdefault -> true
                  | _ -> false)
                stmts
            in
            Alcotest.(check int) "labels" 2 (List.length cases)
          | _ -> Alcotest.fail "switch body should be a block")
        | _ -> Alcotest.fail "expected a switch");
    t "goto and label" `Quick (fun () ->
        let f = first_func "void f(void) { goto out; x = 1; out: y = 2; }" in
        let gotos = ref 0 and labels = ref 0 in
        List.iter
          (fun s ->
            Ast.iter_stmt
              (fun s ->
                match s.Ast.sdesc with
                | Ast.Sgoto _ -> incr gotos
                | Ast.Slabel _ -> incr labels
                | _ -> ())
              s)
          f.Ast.f_body;
        Alcotest.(check int) "gotos" 1 !gotos;
        Alcotest.(check int) "labels" 1 !labels);
    t "multi-declarator locals split" `Quick (fun () ->
        let f = first_func "void f(void) { int a = 1, b, c = 3; }" in
        let decls = ref [] in
        List.iter
          (fun s ->
            Ast.iter_stmt
              (fun s ->
                match s.Ast.sdesc with
                | Ast.Sdecl d -> decls := d.Ast.v_name :: !decls
                | _ -> ())
              s)
          f.Ast.f_body;
        Alcotest.(check (list string)) "names" [ "a"; "b"; "c" ]
          (List.rev !decls));
  ]

let global_cases =
  [
    t "typedef introduces a type name" `Quick (fun () ->
        let tu =
          parse_unit "typedef unsigned long u64;\nvoid f(void) { u64 x; }"
        in
        match Ast.functions tu with
        | [ f ] -> (
          match f.Ast.f_body with
          | [ { Ast.sdesc = Ast.Sdecl d; _ } ] ->
            Alcotest.(check string) "type" "u64"
              (Ctype.to_string d.Ast.v_type)
          | _ -> Alcotest.fail "expected one declaration")
        | _ -> Alcotest.fail "expected one function");
    t "struct definition parsed" `Quick (fun () ->
        let tu = parse_unit "struct hdr { int len; long addr; };" in
        match tu.Ast.tu_globals with
        | [ Ast.Gstruct ("hdr", fields, _) ] ->
          Alcotest.(check int) "fields" 2 (List.length fields)
        | _ -> Alcotest.fail "expected a struct definition");
    t "enum values assigned" `Quick (fun () ->
        let tu = parse_unit "enum e { A = 3, B, C = 10 };" in
        match tu.Ast.tu_globals with
        | [ Ast.Genum ("e", items, _) ] ->
          Alcotest.(check (list (pair string (option int))))
            "items"
            [ ("A", Some 3); ("B", None); ("C", Some 10) ]
            items
        | _ -> Alcotest.fail "expected an enum");
    t "prototype vs definition" `Quick (fun () ->
        let tu = parse_unit "int g(int a);\nint g(int a) { return a; }" in
        let protos =
          List.filter
            (function Ast.Gfunc_decl _ -> true | _ -> false)
            tu.Ast.tu_globals
        in
        Alcotest.(check int) "one prototype" 1 (List.length protos);
        Alcotest.(check int) "one definition" 1
          (List.length (Ast.functions tu)));
    t "static function flag" `Quick (fun () ->
        let f = first_func "static void f(void) { }" in
        Alcotest.(check bool) "static" true f.Ast.f_static);
    t "pointer declarator" `Quick (fun () ->
        let tu = parse_unit "char *name;" in
        match tu.Ast.tu_globals with
        | [ Ast.Gvar d ] ->
          Alcotest.(check bool) "is pointer" true
            (Ctype.is_pointer d.Ast.v_type)
        | _ -> Alcotest.fail "expected a global");
    t "array of pointers declarator" `Quick (fun () ->
        let tu = parse_unit "long *table[8];" in
        match tu.Ast.tu_globals with
        | [ Ast.Gvar { Ast.v_type = Ctype.Array (Ctype.Ptr Ctype.Long, Some 8); _ } ]
          ->
          ()
        | _ -> Alcotest.fail "expected long *[8]");
    t "parse error has a location" `Quick (fun () ->
        match parse_unit "void f(void) { if }" with
        | exception Parser.Error (_, loc) ->
          Alcotest.(check bool) "line known" true (loc.Loc.line >= 1)
        | _ -> Alcotest.fail "expected a parse error");
  ]

(* ------------------------------------------------------------------ *)
(* Round-trip property over randomly generated functions               *)
(* ------------------------------------------------------------------ *)

(* generate a random handler-like function with the corpus builder and
   check parse(print(f)) prints identically *)
let random_function seed : Ast.func =
  let rng = Rng.create ~seed in
  let g = Skeletons.gctx ~rng ~flavor:Skeletons.Bitvector in
  for _ = 1 to 3 do
    ignore (Skeletons.fresh_local g)
  done;
  let body =
    Skeletons.dir_consult_body g ~bug:Skeletons.No_bug
      ~pad:(Rng.range rng 2 10)
      ~branches:(Rng.range rng 0 3)
      ()
  in
  let decls =
    List.rev_map (fun v -> Cb.decl_long v) g.Skeletons.locals
  in
  Cb.func "Handler"
    ([ Cb.decl_long "addr"; Cb.decl_long "src" ] @ decls @ body)

let prop_roundtrip =
  QCheck.Test.make ~name:"print/parse round trip is stable" ~count:60
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let f = random_function seed in
      let printed =
        Pp.tunit_to_string { Ast.tu_file = "t.c"; tu_globals = [ Ast.Gfunc f ] }
      in
      let src = Prelude.text ^ printed in
      let tu = Parser.parse_string ~file:"t.c" src in
      match Ast.find_function tu "Handler" with
      | None -> false
      | Some f2 ->
        let printed2 =
          Pp.tunit_to_string
            { Ast.tu_file = "t.c"; tu_globals = [ Ast.Gfunc f2 ] }
        in
        String.equal printed printed2)

let prop_corpus_reparses =
  QCheck.Test.make ~name:"every corpus file reparses to equal text" ~count:1
    QCheck.unit
    (fun () ->
      let corpus = Corpus.generate () in
      List.for_all
        (fun (p : Corpus.protocol) ->
          List.for_all
            (fun (file, src) ->
              let tu = Parser.parse_string ~file src in
              (* printing then reparsing must preserve function count *)
              let n1 = List.length (Ast.functions tu) in
              let printed = Pp.tunit_to_string tu in
              let tu2 = Parser.parse_string ~file printed in
              n1 = List.length (Ast.functions tu2))
            p.Corpus.files)
        corpus.Corpus.protocols)

let suite =
  ( "parser",
    expr_cases @ stmt_cases @ global_cases
    @ [
        QCheck_alcotest.to_alcotest prop_roundtrip;
        QCheck_alcotest.to_alcotest prop_corpus_reparses;
      ] )
