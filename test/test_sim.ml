(** Simulator tests: the clean protocol is fault-free and coherent; the
    buggy protocol manifests the seeded fault classes; the static
    checkers find the golden bugs immediately. *)

let t = Alcotest.test_case

let run ?(transactions = 1500) variant =
  Sim.run { Sim.default_config with Sim.transactions; variant }

let clean = lazy (run Golden.Clean)
let buggy = lazy (run Golden.Buggy)

let sim_cases =
  [
    t "clean: no faults, ever" `Slow (fun () ->
        let r = Lazy.force clean in
        Alcotest.(check int) "faults" 0 (List.length r.Sim.faults));
    t "clean: data integrity holds" `Slow (fun () ->
        let r = Lazy.force clean in
        Alcotest.(check int) "corruptions" 0 r.Sim.stats.Sim.corruptions);
    t "clean: no buffers leak" `Slow (fun () ->
        let r = Lazy.force clean in
        Alcotest.(check int) "leaked" 0 r.Sim.leaked_buffers);
    t "clean: no operation stalls" `Slow (fun () ->
        let r = Lazy.force clean in
        Alcotest.(check int) "stalled" 0 r.Sim.stats.Sim.stalled);
    t "clean: traffic actually flowed" `Slow (fun () ->
        let r = Lazy.force clean in
        Alcotest.(check bool) "messages" true (r.Sim.stats.Sim.messages > 1000);
        Alcotest.(check bool) "NAK retries exercised" true
          (r.Sim.stats.Sim.naks > 0));
    t "buggy: double free manifests eventually" `Slow (fun () ->
        let r = Lazy.force buggy in
        Alcotest.(check bool) "detected" true
          (List.mem_assoc "double free" r.Sim.first_detection));
    t "buggy: fill race manifests eventually" `Slow (fun () ->
        let r = Lazy.force buggy in
        Alcotest.(check bool) "detected" true
          (List.mem_assoc "fill race" r.Sim.first_detection));
    t "buggy: length mismatch manifests eventually" `Slow (fun () ->
        let r = Lazy.force buggy in
        Alcotest.(check bool) "detected" true
          (List.mem_assoc "length mismatch" r.Sim.first_detection));
    t "buggy: the leak wedges the node eventually" `Slow (fun () ->
        let r = Lazy.force buggy in
        Alcotest.(check bool) "pool exhausted" true
          (List.mem_assoc "pool exhausted" r.Sim.first_detection);
        Alcotest.(check bool) "buffers lost" true (r.Sim.leaked_buffers > 0));
    t "buggy: corruption is observed" `Slow (fun () ->
        let r = Lazy.force buggy in
        Alcotest.(check bool) "corruptions" true
          (r.Sim.stats.Sim.corruptions > 0));
    t "buggy: every first detection takes dozens of transactions" `Slow
      (fun () ->
        (* the paper's point: these are rare-path bugs *)
        let r = Lazy.force buggy in
        List.iter
          (fun (cls, at) ->
            Alcotest.(check bool)
              (Printf.sprintf "%s not immediate (at %d)" cls at)
              true (at > 10))
          r.Sim.first_detection);
    t "simulation is deterministic" `Slow (fun () ->
        let a = run ~transactions:400 Golden.Buggy in
        let b = run ~transactions:400 Golden.Buggy in
        Alcotest.(check int) "messages equal" a.Sim.stats.Sim.messages
          b.Sim.stats.Sim.messages;
        Alcotest.(check int) "corruptions equal" a.Sim.stats.Sim.corruptions
          b.Sim.stats.Sim.corruptions);
  ]

(* the static side of the comparison *)
let static_cases =
  [
    t "checkers are quiet on the clean golden protocol" `Quick (fun () ->
        let tus = Golden.program Golden.Clean in
        List.iter
          (fun (c : Registry.checker) ->
            let diags = c.Registry.run ~spec:Golden.spec tus in
            Alcotest.(check int) (c.Registry.name ^ " diags") 0
              (List.length diags))
          Registry.all);
    t "checkers pinpoint all four golden bugs" `Quick (fun () ->
        let tus = Golden.program Golden.Buggy in
        let by_checker =
          List.map
            (fun (c : Registry.checker) ->
              (c.Registry.name, c.Registry.run ~spec:Golden.spec tus))
            Registry.all
        in
        let count name = List.length (List.assoc name by_checker) in
        Alcotest.(check int) "buffer_mgmt finds free bugs" 2
          (count "buffer_mgmt");
        Alcotest.(check int) "msg_length finds the mismatch" 1
          (count "msg_length");
        Alcotest.(check int) "wait_for_db finds the race" 1
          (count "wait_for_db");
        Alcotest.(check int) "others are quiet" 0
          (count "lanes" + count "alloc_check" + count "dir_entry"
         + count "send_wait" + count "exec_restrict"));
    t "the buggy diagnostics land in the right handlers" `Quick (fun () ->
        let tus = Golden.program Golden.Buggy in
        let all =
          List.concat_map
            (fun (c : Registry.checker) -> c.Registry.run ~spec:Golden.spec tus)
            Registry.all
        in
        let funcs = List.map (fun (d : Diag.t) -> d.Diag.func) all in
        List.iter
          (fun f ->
            Alcotest.(check bool) (f ^ " flagged") true (List.mem f funcs))
          [ "NILocalGet"; "NIInval"; "NIUncachedRead"; "NIRemotePut" ]);
  ]

let suite = ("sim + golden", sim_cases @ static_cases)
