(** Mcd scheduler tests: the domain pool runs every task exactly once,
    parallel runs are identical (and identically ordered) to the
    sequential engine on the full corpus — including the CI-forced
    [--jobs 2] configuration — and cache invalidation after a random
    single-function edit re-runs exactly the affected work units. *)

let t = Alcotest.test_case
let corpus = lazy (Corpus.generate ())

(* flatten results to comparable strings: checker names interleaved with
   rendered diagnostics, so both content and order are checked *)
let render (results : (string * Diag.t list) list) : string list =
  List.concat_map
    (fun (name, ds) -> name :: List.map Diag.to_string ds)
    results

let sequential (p : Corpus.protocol) =
  Registry.run_all ~spec:p.Corpus.spec p.Corpus.tus

let jobs_of_corpus c =
  List.map
    (fun (p : Corpus.protocol) ->
      { Mcd.spec = p.Corpus.spec; tus = p.Corpus.tus })
    c.Corpus.protocols

(* ------------------------------------------------------------------ *)
(* the work pool                                                       *)
(* ------------------------------------------------------------------ *)

let pool_tests =
  [
    t "every task runs exactly once" `Quick (fun () ->
        let n = 97 in
        let hits = Array.make n 0 in
        let m = Mutex.create () in
        let tasks =
          Array.init n (fun i () ->
              Mutex.lock m;
              hits.(i) <- hits.(i) + 1;
              Mutex.unlock m)
        in
        let stats = Mcd_pool.run ~domains:4 tasks in
        Array.iteri
          (fun i h ->
            Alcotest.(check int) (Printf.sprintf "task %d" i) 1 h)
          hits;
        let total =
          Array.fold_left
            (fun acc (w : Mcd_pool.worker_stats) -> acc + w.tasks_done)
            0 stats
        in
        Alcotest.(check int) "tasks accounted per-domain" n total);
    t "task exception is re-raised after join" `Quick (fun () ->
        let tasks =
          Array.init 8 (fun i () -> if i = 3 then failwith "boom")
        in
        Alcotest.check_raises "boom" (Failure "boom") (fun () ->
            ignore (Mcd_pool.run ~domains:2 tasks)));
  ]

(* ------------------------------------------------------------------ *)
(* parallel = sequential on the full corpus                            *)
(* ------------------------------------------------------------------ *)

let identity_tests =
  [
    t "jobs 1/2/4 identical to sequential (full corpus)" `Slow (fun () ->
        let c = Lazy.force corpus in
        let expected =
          List.map (fun p -> render (sequential p)) c.Corpus.protocols
        in
        List.iter
          (fun domains ->
            let results, stats =
              Mcd.check_jobs ~jobs:domains (jobs_of_corpus c)
            in
            Alcotest.(check int)
              (Printf.sprintf "no cache => no hits (jobs %d)" domains)
              0 stats.Mcd.cache_hits;
            Alcotest.(check int)
              (Printf.sprintf "all units run (jobs %d)" domains)
              stats.Mcd.units_total stats.Mcd.units_run;
            List.iteri
              (fun i per_protocol ->
                Alcotest.(check (list string))
                  (Printf.sprintf "protocol %d, jobs %d" i domains)
                  (List.nth expected i)
                  (render per_protocol))
              results)
          [ 1; 2; 4 ]);
  ]

(* ------------------------------------------------------------------ *)
(* incremental invalidation                                            *)
(* ------------------------------------------------------------------ *)

(* append a harmless marker statement to the [idx]-th function (in the
   same source order the scheduler enumerates) *)
let edit_nth_function (tus : Ast.tunit list) (idx : int) :
    Ast.tunit list * string =
  let count = ref 0 in
  let edited = ref "" in
  let tus' =
    List.map
      (fun tu ->
        {
          tu with
          Ast.tu_globals =
            List.map
              (function
                | Ast.Gfunc f ->
                  let i = !count in
                  incr count;
                  if i = idx then begin
                    edited := f.Ast.f_name;
                    Ast.Gfunc
                      {
                        f with
                        Ast.f_body =
                          f.Ast.f_body
                          @ [
                              Ast.mk_stmt (Ast.Sexpr (Ast.int_lit 424242));
                            ];
                      }
                  end
                  else Ast.Gfunc f
                | g -> g)
              tu.Ast.tu_globals;
        })
      tus
  in
  (tus', !edited)

let per_function_checkers =
  List.length
    (List.filter
       (fun (c : Registry.checker) ->
         match c.Registry.phase with
         | Registry.Per_function _ -> true
         | Registry.Whole_program _ -> false)
       Registry.all)

let whole_program_checkers = List.length Registry.all - per_function_checkers

(* the protocol the property edits, its cold-filled cache, and the set of
   functions whose edit invalidates the whole-program checkers *)
let incr_base =
  lazy
    (let p =
       Option.get (Corpus.find (Lazy.force corpus) "bitvector")
     in
     let job = { Mcd.spec = p.Corpus.spec; tus = p.Corpus.tus } in
     let cache = Mcd_cache.create () in
     let _, cold = Mcd.check_jobs ~cache ~jobs:1 [ job ] in
     let cg = Callgraph.build p.Corpus.tus in
     let roots =
       List.map
         (fun (h : Flash_api.handler_spec) -> h.Flash_api.h_name)
         p.Corpus.spec.Flash_api.p_handlers
     in
     let reach = Callgraph.reachable_from cg roots in
     let nfuncs =
       List.fold_left
         (fun acc tu -> acc + List.length (Ast.functions tu))
         0 p.Corpus.tus
     in
     (p, cache, cold, reach, nfuncs))

let prop_invalidation_is_exact =
  QCheck.Test.make ~count:8
    ~name:"warm re-check after one edit re-runs exactly the affected units"
    QCheck.(int_bound 10_000_000)
    (fun seed ->
      let p, cache, cold, reach, nfuncs = Lazy.force incr_base in
      let idx = seed mod nfuncs in
      let tus', edited = edit_nth_function p.Corpus.tus idx in
      let results, warm =
        Mcd.check_jobs ~cache:(Mcd_cache.copy cache) ~jobs:2
          [ { Mcd.spec = p.Corpus.spec; tus = tus' } ]
      in
      let lanes_rerun =
        if List.mem edited reach then whole_program_checkers else 0
      in
      (* one function-batched unit for the edited function (all
         per-function checkers share it), plus the whole-program units
         when the edit is in their dependency closure *)
      let expected_run = 1 + lanes_rerun in
      if warm.Mcd.units_run <> expected_run then
        QCheck.Test.fail_reportf
          "edited %s (idx %d): %d units re-ran, expected %d" edited idx
          warm.Mcd.units_run expected_run;
      if warm.Mcd.cache_hits <> cold.Mcd.units_total - expected_run then
        QCheck.Test.fail_reportf "hits %d, expected %d" warm.Mcd.cache_hits
          (cold.Mcd.units_total - expected_run);
      let fresh = Registry.run_all ~spec:p.Corpus.spec tus' in
      render (List.hd results) = render fresh)

let incremental_tests =
  [
    t "unedited warm re-check is all hits" `Quick (fun () ->
        let p, cache, cold, _, _ = Lazy.force incr_base in
        let results, warm =
          Mcd.check_jobs ~cache:(Mcd_cache.copy cache) ~jobs:2
            [ { Mcd.spec = p.Corpus.spec; tus = p.Corpus.tus } ]
        in
        Alcotest.(check int) "no units re-run" 0 warm.Mcd.units_run;
        Alcotest.(check int)
          "all hits" cold.Mcd.units_total warm.Mcd.cache_hits;
        Alcotest.(check (list string))
          "diags identical"
          (render (sequential p))
          (render (List.hd results)));
    t "cache survives save/load" `Quick (fun () ->
        let p, cache, _, _, _ = Lazy.force incr_base in
        let file = Filename.temp_file "mcd_cache" ".bin" in
        Fun.protect
          ~finally:(fun () -> Sys.remove file)
          (fun () ->
            Mcd_cache.save cache file;
            let reloaded = Mcd_cache.load file in
            Alcotest.(check int)
              "same size" (Mcd_cache.size cache) (Mcd_cache.size reloaded);
            let _, warm =
              Mcd.check_jobs ~cache:reloaded ~jobs:1
                [ { Mcd.spec = p.Corpus.spec; tus = p.Corpus.tus } ]
            in
            Alcotest.(check int) "no units re-run" 0 warm.Mcd.units_run));
    t "stale cache file loads as empty" `Quick (fun () ->
        let file = Filename.temp_file "mcd_cache" ".bin" in
        Fun.protect
          ~finally:(fun () -> Sys.remove file)
          (fun () ->
            let oc = open_out file in
            output_string oc "not a cache";
            close_out oc;
            Alcotest.(check int) "empty" 0
              (Mcd_cache.size (Mcd_cache.load file))));
    QCheck_alcotest.to_alcotest prop_invalidation_is_exact;
    t "multi-writer directory: publish, merge, corruption tolerated" `Quick
      (fun () ->
        let _, cache, _, _, _ = Lazy.force incr_base in
        let dir =
          Filename.concat
            (Filename.get_temp_dir_name ())
            (Printf.sprintf "mcd-dir-%d" (Unix.getpid ()))
        in
        if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
        Fun.protect
          ~finally:(fun () ->
            Array.iter
              (fun f -> try Sys.remove (Filename.concat dir f) with _ -> ())
              (Sys.readdir dir);
            try Unix.rmdir dir with _ -> ())
          (fun () ->
            (* two writers with disjoint extra entries publish segments *)
            let w1 = Mcd_cache.copy cache and w2 = Mcd_cache.create () in
            Mcd_cache.add w2 "only-in-w2" [| [] |];
            let seg1 =
              match Mcd_cache.publish_dir w1 dir with
              | Ok p -> p
              | Error e -> Alcotest.failf "publish w1: %s" e
            in
            (match Mcd_cache.publish_dir w2 dir with
            | Ok _ -> ()
            | Error e -> Alcotest.failf "publish w2: %s" e);
            (* an identical re-publish deduplicates to the same segment *)
            (match Mcd_cache.publish_dir w1 dir with
            | Ok p -> Alcotest.(check string) "dedup" seg1 p
            | Error e -> Alcotest.failf "re-publish: %s" e);
            (* a corrupt segment must be skipped, not fatal *)
            let oc = open_out (Filename.concat dir "seg-dead.mc") in
            output_string oc "garbage segment";
            close_out oc;
            let merged = Mcd_cache.load_dir dir in
            Alcotest.(check int)
              "all writers' entries merged"
              (Mcd_cache.size w1 + Mcd_cache.size w2)
              (Mcd_cache.size merged);
            Alcotest.(check bool) "w2's entry present" true
              (Mcd_cache.find merged "only-in-w2" <> None);
            (* in-memory merge folds the other writer's entries in *)
            Mcd_cache.merge ~into:w1 w2;
            Alcotest.(check bool) "merge picked up the entry" true
              (Mcd_cache.find w1 "only-in-w2" <> None);
            (* a missing directory is cold data, never an error *)
            Alcotest.(check int) "missing dir loads empty" 0
              (Mcd_cache.size (Mcd_cache.load_dir "/no/such/dir"))));
  ]

let suite =
  ( "mcd",
    pool_tests @ identity_tests @ incremental_tests )
