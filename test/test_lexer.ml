(** Lexer unit and property tests. *)

let tokens_of src = List.map fst (Lexer.tokens src)

let check_tokens name src expected =
  Alcotest.test_case name `Quick (fun () ->
      let got = tokens_of src in
      Alcotest.(check int)
        (name ^ " token count")
        (List.length expected) (List.length got);
      List.iteri
        (fun i (e, g) ->
          Alcotest.(check string)
            (Printf.sprintf "%s token %d" name i)
            (Token.to_string e) (Token.to_string g))
        (List.combine expected got))

let t = Alcotest.test_case

let cases =
  [
    check_tokens "empty" "" [ Token.EOF ];
    check_tokens "identifier" "foo_bar42"
      [ Token.IDENT "foo_bar42"; Token.EOF ];
    check_tokens "keywords" "if else while return"
      [ Token.KW_IF; Token.KW_ELSE; Token.KW_WHILE; Token.KW_RETURN;
        Token.EOF ];
    check_tokens "decimal int" "42" [ Token.INT (42L, "42"); Token.EOF ];
    check_tokens "hex int" "0xff" [ Token.INT (255L, "0xff"); Token.EOF ];
    check_tokens "suffixed int" "42UL" [ Token.INT (42L, "42UL"); Token.EOF ];
    check_tokens "float" "3.5" [ Token.FLOAT (3.5, "3.5"); Token.EOF ];
    check_tokens "float exponent" "1e3"
      [ Token.FLOAT (1000.0, "1e3"); Token.EOF ];
    check_tokens "float f-suffix" "2.0f"
      [ Token.FLOAT (2.0, "2.0f"); Token.EOF ];
    check_tokens "char literal" "'a'" [ Token.CHAR 'a'; Token.EOF ];
    check_tokens "escaped char" "'\\n'" [ Token.CHAR '\n'; Token.EOF ];
    check_tokens "string" "\"hi\"" [ Token.STRING "hi"; Token.EOF ];
    check_tokens "string with escape" "\"a\\nb\""
      [ Token.STRING "a\nb"; Token.EOF ];
    check_tokens "arrow vs minus" "a->b - c"
      [ Token.IDENT "a"; Token.ARROW; Token.IDENT "b"; Token.MINUS;
        Token.IDENT "c"; Token.EOF ];
    check_tokens "shift vs compare" "a << b < c"
      [ Token.IDENT "a"; Token.LSHIFT; Token.IDENT "b"; Token.LT;
        Token.IDENT "c"; Token.EOF ];
    check_tokens "shift-assign" "a <<= 2"
      [ Token.IDENT "a"; Token.LSHIFTEQ; Token.INT (2L, "2"); Token.EOF ];
    check_tokens "increment" "a++ + ++b"
      [ Token.IDENT "a"; Token.PLUSPLUS; Token.PLUS; Token.PLUSPLUS;
        Token.IDENT "b"; Token.EOF ];
    check_tokens "line comment" "a // comment\nb"
      [ Token.IDENT "a"; Token.IDENT "b"; Token.EOF ];
    check_tokens "block comment" "a /* x\ny */ b"
      [ Token.IDENT "a"; Token.IDENT "b"; Token.EOF ];
    check_tokens "preprocessor skipped" "#include <x.h>\nfoo"
      [ Token.IDENT "foo"; Token.EOF ];
    check_tokens "preprocessor continuation" "#define A \\\n 42\nfoo"
      [ Token.IDENT "foo"; Token.EOF ];
    check_tokens "ellipsis" "f(...)"
      [ Token.IDENT "f"; Token.LPAREN; Token.ELLIPSIS; Token.RPAREN;
        Token.EOF ];
    t "line numbers advance" `Quick (fun () ->
        let toks = Lexer.tokens "a\nb\n  c" in
        let line_of tok =
          let _, loc = List.find (fun (t, _) -> t = Token.IDENT tok) toks in
          loc.Loc.line
        in
        Alcotest.(check int) "a line" 1 (line_of "a");
        Alcotest.(check int) "b line" 2 (line_of "b");
        Alcotest.(check int) "c line" 3 (line_of "c");
        let _, c_loc =
          List.find (fun (t, _) -> t = Token.IDENT "c") toks
        in
        Alcotest.(check int) "c col" 3 c_loc.Loc.col);
    t "unterminated string raises" `Quick (fun () ->
        Alcotest.check_raises "raises"
          (Lexer.Error
             ("unterminated string literal", Loc.make ~file:"<string>" ~line:1 ~col:6))
          (fun () -> ignore (Lexer.tokens "\"oops")));
    t "unexpected char raises" `Quick (fun () ->
        match Lexer.tokens "a $ b" with
        | exception Lexer.Error _ -> ()
        | _ -> Alcotest.fail "expected a lexer error");
  ]

(* property: every decimal integer round-trips *)
let prop_int_roundtrip =
  QCheck.Test.make ~name:"lexer int literal roundtrip" ~count:200
    QCheck.(int_bound 1_000_000_000)
    (fun n ->
      match tokens_of (string_of_int n) with
      | [ Token.INT (v, _); Token.EOF ] -> Int64.to_int v = n
      | _ -> false)

(* property: identifiers survive arbitrary whitespace padding *)
let prop_ident_ws =
  let ident_gen =
    QCheck.Gen.(
      map2
        (fun c rest -> String.make 1 c ^ rest)
        (oneofl [ 'a'; 'z'; 'A'; '_' ])
        (string_size ~gen:(oneofl [ 'a'; 'b'; '0'; '_' ]) (0 -- 8)))
  in
  QCheck.Test.make ~name:"lexer ident under whitespace" ~count:200
    (QCheck.make ident_gen)
    (fun id ->
      match tokens_of ("  \t\n" ^ id ^ "   ") with
      | [ Token.IDENT got; Token.EOF ] ->
        (* keywords lex as keywords, anything else as itself *)
        got = id
      | [ _kw; Token.EOF ] -> List.mem_assoc id Token.keyword_table
      | _ -> false)

let suite =
  ( "lexer",
    cases
    @ [
        QCheck_alcotest.to_alcotest prop_int_roundtrip;
        QCheck_alcotest.to_alcotest prop_ident_ws;
      ] )
