(** The serving stack: wire-protocol totality and round-tripping,
    framing safety against hostile bytes, a live in-process daemon
    (checks, interleaved sessions, drain under load, reload, fault
    containment), daemon ≡ CLI byte-identity, the telemetry surface
    (stats formats, live metrics, access log, flight recorder, trace
    propagation), and the dogfood check —
    our own [msg_length] checker run over a Clite model of
    [Serve.Proto]'s framing discipline. *)

let t = Alcotest.test_case

module Proto = Serve.Proto
module Client = Serve.Client
module Oracle = Serve.Serve_oracle

(* ------------------------------------------------------------------ *)
(* Codec round trips (qcheck)                                          *)
(* ------------------------------------------------------------------ *)

let gen_bytes =
  (* adversarial strings: full byte range, NULs included *)
  QCheck.Gen.(string_size ~gen:(map Char.chr (int_bound 255)) (int_bound 60))

let gen_opts =
  QCheck.Gen.(
    map3
      (fun names trace (a, b) ->
        {
          Proto.co_checkers = names;
          co_explain = a;
          co_verbose = b;
          co_quiet = a <> b;
          co_strict = a && b;
          (* arbitrary bytes: the codec must round-trip whatever the
             client put here; sanitisation is the daemon's job *)
          co_trace = trace;
        })
      (list_size (int_bound 3) gen_bytes)
      gen_bytes
      (pair bool bool))

let gen_request =
  QCheck.Gen.(
    oneof
      [
        map2
          (fun o fs -> Proto.Check_files (o, fs))
          gen_opts
          (list_size (int_bound 4) gen_bytes);
        map3
          (fun o n c -> Proto.Check_buffer (o, n, c))
          gen_opts gen_bytes gen_bytes;
        oneofl
          [
            Proto.Stats Proto.S_text;
            Proto.Stats Proto.S_json;
            Proto.Metrics Proto.M_prom;
            Proto.Metrics Proto.M_json;
            Proto.Flight;
          ];
        return Proto.Drain;
        return Proto.Reload;
        return Proto.Ping;
      ])

let gen_response =
  QCheck.Gen.(
    oneof
      [
        map3
          (fun c s txt ->
            Proto.R_diag
              {
                Proto.d_checker = c;
                d_severity = s;
                d_internal = String.length txt land 1 = 1;
                d_text = txt;
              })
          gen_bytes gen_bytes gen_bytes;
        map3
          (fun e f d ->
            Proto.R_done { rd_exit = e; rd_findings = f; rd_diags = d })
          (int_bound 3) small_nat small_nat;
        map (fun s -> Proto.R_text s) gen_bytes;
        map
          (fun ms -> Proto.R_overloaded { ro_retry_after_ms = ms })
          small_nat;
        return Proto.R_ok;
        map (fun s -> Proto.R_error s) gen_bytes;
      ])

let prop_request_roundtrip =
  QCheck.Test.make ~name:"proto: decode (encode req) = Ok req" ~count:300
    (QCheck.make ~print:(Format.asprintf "%a" Proto.pp_request) gen_request)
    (fun req ->
      match Proto.decode_request (Proto.encode_request req) with
      | Ok req' -> Proto.equal_request req req'
      | Error _ -> false)

let prop_response_roundtrip =
  QCheck.Test.make ~name:"proto: decode (encode resp) = Ok resp" ~count:300
    (QCheck.make gen_response)
    (fun resp ->
      match Proto.decode_response (Proto.encode_response resp) with
      | Ok resp' -> Proto.equal_response resp resp'
      | Error _ -> false)

let prop_decode_total =
  QCheck.Test.make ~name:"proto: hostile payloads never raise" ~count:500
    (QCheck.make gen_bytes)
    (fun bytes ->
      let total decode =
        match decode bytes with Ok _ | Error _ -> true
      in
      total Proto.decode_request && total Proto.decode_response)

let prop_trailing_garbage_rejected =
  QCheck.Test.make ~name:"proto: trailing garbage is rejected" ~count:100
    (QCheck.make ~print:(Format.asprintf "%a" Proto.pp_request) gen_request)
    (fun req ->
      match Proto.decode_request (Proto.encode_request req ^ "\x00") with
      | Error _ -> true
      | Ok _ -> false)

(* ------------------------------------------------------------------ *)
(* Framing over a real descriptor                                      *)
(* ------------------------------------------------------------------ *)

let with_pair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with _ -> ());
      try Unix.close b with _ -> ())
    (fun () -> f a b)

let write_all fd s =
  ignore (Unix.write_substring fd s 0 (String.length s))

let framing_cases =
  [
    t "split_frame: prefixes want more, whole frames split exactly" `Quick
      (fun () ->
        let f = Proto.frame "hello" in
        let buf = Bytes.of_string f in
        for len = 0 to String.length f - 1 do
          match Proto.split_frame buf 0 len with
          | `Need -> ()
          | `Frame _ -> Alcotest.failf "prefix %d split a frame" len
          | `Bad msg -> Alcotest.failf "prefix %d rejected: %s" len msg
        done;
        (match Proto.split_frame buf 0 (String.length f) with
        | `Frame (p, used) ->
          Alcotest.(check string) "payload" "hello" p;
          Alcotest.(check int) "consumed" (String.length f) used
        | _ -> Alcotest.fail "whole frame not split");
        (* back-to-back frames parse from the running offset *)
        let both = Bytes.of_string (f ^ Proto.frame "") in
        (match Proto.split_frame both 0 (Bytes.length both) with
        | `Frame (_, used) -> (
          match Proto.split_frame both used (Bytes.length both - used) with
          | `Frame (p2, used2) ->
            Alcotest.(check string) "second payload" "" p2;
            Alcotest.(check int)
              "fully consumed" (Bytes.length both) (used + used2)
          | _ -> Alcotest.fail "second frame not split")
        | _ -> Alcotest.fail "first frame not split");
        match Proto.split_frame (Bytes.make 16 'X') 0 16 with
        | `Bad _ -> ()
        | _ -> Alcotest.fail "bad magic accepted");
    t "frame carries its exact length big-endian" `Quick (fun () ->
        let payload = "hello \x00 frame" in
        let f = Proto.frame payload in
        Alcotest.(check int) "total length"
          (Proto.header_len + String.length payload)
          (String.length f);
        Alcotest.(check string) "magic" Proto.magic (String.sub f 0 4);
        let len =
          (Char.code f.[6] lsl 24)
          lor (Char.code f.[7] lsl 16)
          lor (Char.code f.[8] lsl 8)
          lor Char.code f.[9]
        in
        (* the header's length claim agrees with the payload the peer
           reads — the msg_length discipline, on our own wire *)
        Alcotest.(check int) "length field" (String.length payload) len);
    t "read_frame round-trips a written frame" `Quick (fun () ->
        with_pair (fun a b ->
            Proto.write_frame a "payload";
            match Proto.read_frame b with
            | Ok p -> Alcotest.(check string) "payload" "payload" p
            | Error e -> Alcotest.fail e));
    t "truncated header, truncated payload, eof" `Quick (fun () ->
        with_pair (fun a b ->
            write_all a (String.sub (Proto.frame "full payload") 0 6);
            Unix.close a;
            match Proto.read_frame b with
            | Error _ -> ()
            | Ok _ -> Alcotest.fail "truncated header accepted");
        with_pair (fun a b ->
            let f = Proto.frame "twelve bytes" in
            write_all a (String.sub f 0 (String.length f - 3));
            Unix.close a;
            match Proto.read_frame b with
            | Error _ -> ()
            | Ok _ -> Alcotest.fail "truncated payload accepted");
        with_pair (fun a b ->
            Unix.close a;
            match Proto.read_frame b with
            | Error "eof" -> ()
            | Error e -> Alcotest.failf "expected eof, got %s" e
            | Ok _ -> Alcotest.fail "eof accepted"));
    t "oversized length claim rejected before allocation" `Quick (fun () ->
        with_pair (fun a b ->
            let h = Bytes.of_string (Proto.frame "") in
            (* rewrite the length field to claim 2 GiB *)
            Bytes.set h 6 '\x7f';
            Bytes.set h 7 '\xff';
            Bytes.set h 8 '\xff';
            Bytes.set h 9 '\xff';
            write_all a (Bytes.to_string h);
            Unix.close a;
            match Proto.read_frame b with
            | Error _ -> ()
            | Ok _ -> Alcotest.fail "oversized frame accepted"));
    t "bad magic and bad version rejected" `Quick (fun () ->
        with_pair (fun a b ->
            write_all a ("XXXX" ^ String.make 6 '\x00');
            Unix.close a;
            match Proto.read_frame b with
            | Error _ -> ()
            | Ok _ -> Alcotest.fail "bad magic accepted"));
  ]

(* ------------------------------------------------------------------ *)
(* Live daemon                                                         *)
(* ------------------------------------------------------------------ *)

let buggy_src =
  "void H(void) { HANDLER_GLOBALS(header.nh.len) = LEN_NODATA; \
   NI_SEND(MSG_PUT, F_DATA, 0, W_NOWAIT, 1, 0); }"

let with_daemon ?config f =
  let d = Oracle.start ?config () in
  Fun.protect ~finally:(fun () -> try Oracle.stop d with _ -> ()) (fun () ->
      f d)

let with_client addr f =
  match Client.connect addr with
  | Error e -> Alcotest.fail (Client.err_to_string e)
  | Ok c -> Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

let plain = Proto.default_opts

let find_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.equal (String.sub hay i nn) needle then Some i
    else go (i + 1)
  in
  go 0

let contains_sub hay needle = find_sub hay needle <> None

(* enough JSON to read a counter out of the daemon's stats reply
   without dragging in a parser *)
let json_int_field s name =
  match find_sub s (Printf.sprintf "\"%s\":" name) with
  | None -> None
  | Some i ->
    let j = ref (i + String.length name + 3) in
    let start = !j in
    while
      !j < String.length s
      && (match s.[!j] with '0' .. '9' -> true | _ -> false)
    do
      incr j
    done;
    if !j = start then None
    else int_of_string_opt (String.sub s start (!j - start))

(* a bare prometheus sample line: [name value] *)
let prom_value text name =
  String.split_on_char '\n' text
  |> List.find_map (fun line ->
         match find_sub line (name ^ " ") with
         | Some 0 ->
           float_of_string_opt
             (String.sub line
                (String.length name + 1)
                (String.length line - String.length name - 1))
         | _ -> None)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let expect_checked = function
  | Ok (Client.Checked r) -> r
  | Ok (Client.Refused msg) -> Alcotest.failf "refused: %s" msg
  | Ok (Client.Overloaded ms) -> Alcotest.failf "overloaded: %dms" ms
  | Error e -> Alcotest.fail (Client.err_to_string e)

let daemon_cases =
  [
    t "ping, buffer check, stats over the wire" `Quick (fun () ->
        with_daemon (fun d ->
            with_client (Oracle.addr d) (fun c ->
                (match Client.ping c with
                | Ok () -> ()
                | Error e -> Alcotest.fail (Client.err_to_string e));
                let r =
                  expect_checked
                    (Client.check_buffer c plain ~name:"b.c"
                       ~contents:buggy_src)
                in
                Alcotest.(check int) "findings exit" 1 r.Client.cr_exit;
                Alcotest.(check bool) "findings counted" true
                  (r.Client.cr_findings > 0);
                Alcotest.(check int) "stream complete"
                  (List.length r.Client.cr_diags)
                  r.Client.cr_findings;
                match Client.stats c with
                | Ok s ->
                  Alcotest.(check bool) "stats mention requests" true
                    (String.length s > 0)
                | Error e -> Alcotest.fail (Client.err_to_string e))));
    t "daemon output byte-identical to the CLI path" `Quick (fun () ->
        (* corpus files on disk, like the real CLI differential in CI *)
        let dir =
          Filename.concat
            (Filename.get_temp_dir_name ())
            (Printf.sprintf "serve-ident-%d" (Unix.getpid ()))
        in
        if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
        Corpus.write_to_dir (Corpus.generate ()) dir;
        let files =
          Sys.readdir dir |> Array.to_list
          |> List.filter (fun f -> Filename.check_suffix f ".c")
          |> List.sort compare
          |> List.map (Filename.concat dir)
        in
        let files = [ List.nth files 0; List.nth files 1 ] in
        let ropts =
          {
            Mcheck_api.ro_explain = false;
            ro_verbose = false;
            ro_quiet = false;
          }
        in
        let local_out, local_exit =
          let s = Mcheck_api.Session.create () in
          Fun.protect
            ~finally:(fun () -> Mcheck_api.Session.close s)
            (fun () ->
              let r = Mcheck_api.Session.check_files s files in
              let diags =
                String.concat ""
                  (List.map
                     (Mcheck_api.render_diag ropts)
                     (Mcheck_api.report_diags r))
              in
              ( (if r.Mcheck_api.r_findings = 0 then
                   diags ^ "no violations found\n"
                 else diags),
                Robust.exit_code r.Mcheck_api.r_outcome ))
        in
        with_daemon (fun d ->
            with_client (Oracle.addr d) (fun c ->
                let buf = Buffer.create 4096 in
                let r =
                  expect_checked
                    (Client.check_files
                       ~on_diag:(fun df ->
                         Buffer.add_string buf df.Proto.d_text)
                       c plain files)
                in
                if r.Client.cr_findings = 0 then
                  Buffer.add_string buf "no violations found\n";
                Alcotest.(check string)
                  "stdout bytes" local_out (Buffer.contents buf);
                Alcotest.(check int) "exit code" local_exit r.Client.cr_exit)));
    t "interleaved client sessions multiplex cleanly" `Quick (fun () ->
        with_daemon (fun d ->
            with_client (Oracle.addr d) (fun c1 ->
                with_client (Oracle.addr d) (fun c2 ->
                    let check c =
                      (expect_checked
                         (Client.check_buffer c plain ~name:"b.c"
                            ~contents:buggy_src))
                        .Client.cr_exit
                    in
                    Alcotest.(check (list int))
                      "alternating requests"
                      [ 1; 1; 1; 1 ]
                      [ check c1; check c2; check c1; check c2 ]))));
    t "drain under load: zero admitted responses lost" `Quick (fun () ->
        with_daemon (fun d ->
            let n = 6 in
            let completed = Atomic.make 0
            and refused = Atomic.make 0
            and lost = Atomic.make 0 in
            let worker _ =
              match Client.connect (Oracle.addr d) with
              | Error _ -> Atomic.incr lost
              | Ok c ->
                Fun.protect
                  ~finally:(fun () -> Client.close c)
                  (fun () ->
                    match
                      Client.check_buffer c plain ~name:"b.c"
                        ~contents:buggy_src
                    with
                    | Ok (Client.Checked _) -> Atomic.incr completed
                    | Ok (Client.Refused _) | Ok (Client.Overloaded _) ->
                      Atomic.incr refused
                    | Error _ -> Atomic.incr lost)
            in
            let threads = List.init n (fun i -> Thread.create worker i) in
            Thread.delay 0.002;
            Oracle.stop d;
            List.iter Thread.join threads;
            Alcotest.(check int) "lost" 0 (Atomic.get lost);
            Alcotest.(check int)
              "every request accounted" n
              (Atomic.get completed + Atomic.get refused)));
    t "draining daemon refuses new checks explicitly" `Quick (fun () ->
        let d = Oracle.start () in
        with_client (Oracle.addr d) (fun c ->
            (match Client.drain c with
            | Ok () -> ()
            | Error e -> Alcotest.fail (Client.err_to_string e));
            match
              Client.check_buffer c plain ~name:"b.c" ~contents:buggy_src
            with
            | Ok (Client.Refused _) | Ok (Client.Overloaded _) -> ()
            | Ok (Client.Checked _) ->
              Alcotest.fail "check accepted during drain"
            | Error _ ->
              (* the daemon may already have hung up: also an explicit
                 refusal, not a lost admitted response *)
              ()));
    t "protocol garbage answered, daemon survives" `Quick (fun () ->
        with_daemon (fun d ->
            let path =
              match Oracle.addr d with
              | Proto.Unix_sock p -> p
              | Proto.Tcp _ -> Alcotest.fail "expected unix socket"
            in
            let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
            Unix.connect fd (Unix.ADDR_UNIX path);
            (* a well-framed payload that is not a valid request *)
            Proto.write_frame fd "\xff\xfe\xfd";
            (match Proto.read_frame fd with
            | Ok payload -> (
              match Proto.decode_response payload with
              | Ok (Proto.R_error _) -> ()
              | _ -> Alcotest.fail "expected an error frame")
            | Error e -> Alcotest.failf "no reply to garbage: %s" e);
            Unix.close fd;
            (* raw garbage bytes on a second connection *)
            let fd2 = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
            Unix.connect fd2 (Unix.ADDR_UNIX path);
            write_all fd2 "GET / HTTP/1.1\r\n\r\n";
            (try Unix.close fd2 with _ -> ());
            (* the daemon is still serving *)
            with_client (Oracle.addr d) (fun c ->
                match Client.ping c with
                | Ok () -> ()
                | Error e -> Alcotest.fail (Client.err_to_string e))));
    t "reload swaps the session without dropping service" `Quick (fun () ->
        with_daemon (fun d ->
            with_client (Oracle.addr d) (fun c ->
                let before =
                  expect_checked
                    (Client.check_buffer c plain ~name:"b.c"
                       ~contents:buggy_src)
                in
                (match Client.reload c with
                | Ok () -> ()
                | Error e -> Alcotest.fail (Client.err_to_string e));
                let after =
                  expect_checked
                    (Client.check_buffer c plain ~name:"b.c"
                       ~contents:buggy_src)
                in
                Alcotest.(check int)
                  "same verdict across reload" before.Client.cr_exit
                  after.Client.cr_exit)));
    t "fuzzed byte streams never kill the daemon" `Quick (fun () ->
        with_daemon (fun d ->
            let path =
              match Oracle.addr d with
              | Proto.Unix_sock p -> p
              | Proto.Tcp _ -> Alcotest.fail "expected unix socket"
            in
            let rng = Random.State.make [| 0xF4A3 |] in
            for _ = 1 to 20 do
              let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
              Unix.connect fd (Unix.ADDR_UNIX path);
              let len = Random.State.int rng 64 in
              let junk =
                String.init len (fun _ -> Char.chr (Random.State.int rng 256))
              in
              (* half the streams lead with valid magic to get past the
                 header check *)
              let payload =
                if Random.State.bool rng then Proto.magic ^ junk else junk
              in
              (try write_all fd payload with _ -> ());
              (try Unix.close fd with _ -> ())
            done;
            with_client (Oracle.addr d) (fun c ->
                match Client.ping c with
                | Ok () -> ()
                | Error e -> Alcotest.fail (Client.err_to_string e))));
    t "serve oracle: daemon = CLI on generated programs" `Quick (fun () ->
        with_daemon (fun d ->
            List.iter
              (fun seed ->
                let p = Fuzz_gen.generate ~seed () in
                match Oracle.check d p with
                | [] -> ()
                | f :: _ ->
                  Alcotest.failf "seed %d: %s" seed f.Fuzz_oracle.f_detail)
              [ 1; 2; 3 ]));
  ]

(* ------------------------------------------------------------------ *)
(* Supervised dispatch: worker pool, retry, overload, drain            *)
(* ------------------------------------------------------------------ *)

let sup_sock_seq = Atomic.make 0

(* a daemon whose checks run in supervised worker processes; chaos
   units are only honoured when [allow_chaos] asks for them *)
let with_sup_daemon ?(allow_chaos = false) ?(max_inflight = 64)
    ?(wall_ms = 10_000.) f =
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mcsup-test-%d-%d.sock" (Unix.getpid ())
         (Atomic.fetch_and_add sup_sock_seq 1))
  in
  let addr = Proto.Unix_sock path in
  let cfg =
    {
      Serve.Server.default_config with
      Serve.Server.addr;
      idle_timeout = 2.0;
      max_inflight;
      supervise =
        Some
          {
            Serve.Server.default_supervise with
            Serve.Server.sv_wall_ms = Some wall_ms;
            sv_allow_chaos = allow_chaos;
          };
    }
  in
  match Serve.Server.create cfg with
  | Error msg -> Alcotest.fail msg
  | Ok srv ->
    let th = Thread.create Serve.Server.run srv in
    let rec wait n =
      if n = 0 then Alcotest.fail "supervised daemon did not answer pings"
      else
        match Client.connect addr with
        | Error _ ->
          Thread.delay 0.05;
          wait (n - 1)
        | Ok c -> (
          let r = Client.ping c in
          Client.close c;
          match r with
          | Ok () -> ()
          | Error _ ->
            Thread.delay 0.05;
            wait (n - 1))
    in
    wait 100;
    Fun.protect
      ~finally:(fun () ->
        (match Client.connect addr with
        | Ok c ->
          ignore (Client.drain c);
          Client.close c
        | Error _ -> Serve.Server.initiate_drain srv);
        (try Thread.join th with _ -> ());
        try Unix.unlink path with _ -> ())
      (fun () -> f srv addr)

let retries_now () =
  Mctel.Metrics.counter_value (Mctel.Metrics.counter "mcsup_retries_total")

let supervised_cases =
  [
    t "supervised serve oracle: daemon = CLI on generated programs" `Quick
      (fun () ->
        let d = Oracle.start ~supervised:true () in
        Fun.protect
          ~finally:(fun () -> try Oracle.stop d with _ -> ())
          (fun () ->
            List.iter
              (fun seed ->
                let p = Fuzz_gen.generate ~seed () in
                match Oracle.check d p with
                | [] -> ()
                | f :: _ ->
                  Alcotest.failf "seed %d: %s" seed f.Fuzz_oracle.f_detail)
              [ 1; 2 ]));
    t "worker killed mid-request: one transparent retry, same answer" `Quick
      (fun () ->
        with_sup_daemon ~allow_chaos:true (fun srv addr ->
            let retries0 = retries_now () in
            let result = ref None in
            let th =
              Thread.create
                (fun () ->
                  with_client addr (fun c ->
                      result :=
                        Some
                          (Client.check_buffer c plain
                             ~name:"__chaos_sleep_500__b.c"
                             ~contents:buggy_src)))
                ()
            in
            let pool =
              match Serve.Server.supervisor srv with
              | Some p -> p
              | None -> Alcotest.fail "no worker pool"
            in
            let rec busy n =
              if n = 0 then Alcotest.fail "no busy worker to kill"
              else
                match Mcsup.busy_pids pool with
                | pid :: _ -> pid
                | [] ->
                  Thread.delay 0.05;
                  busy (n - 1)
            in
            ignore (Mcsup.kill_pid pool (busy 40));
            Thread.join th;
            (match !result with
            | Some (Ok (Client.Checked r)) ->
              Alcotest.(check int) "same verdict after the kill" 1
                r.Client.cr_exit
            | Some (Ok (Client.Refused msg)) -> Alcotest.failf "refused: %s" msg
            | Some (Ok (Client.Overloaded ms)) ->
              Alcotest.failf "overloaded: %dms" ms
            | Some (Error e) -> Alcotest.fail (Client.err_to_string e)
            | None -> Alcotest.fail "no result");
            Alcotest.(check bool) "a transparent retry happened" true
              (retries_now () > retries0)));
    t "queue full: R_overloaded with nothing partial written" `Quick
      (fun () ->
        with_sup_daemon ~allow_chaos:true ~max_inflight:1 (fun _ addr ->
            let blocker =
              Thread.create
                (fun () ->
                  with_client addr (fun c ->
                      ignore
                        (Client.check_buffer c plain
                           ~name:"__chaos_sleep_600__b.c" ~contents:buggy_src)))
                ()
            in
            Thread.delay 0.15;
            let shed = ref 0 in
            for _ = 1 to 4 do
              with_client addr (fun c ->
                  let frames = ref 0 in
                  match
                    Client.check_buffer
                      ~on_diag:(fun _ -> incr frames)
                      c plain ~name:"b.c" ~contents:buggy_src
                  with
                  | Ok (Client.Overloaded ms) ->
                    incr shed;
                    Alcotest.(check bool) "positive retry-after" true (ms > 0);
                    Alcotest.(check int) "no partial frames" 0 !frames
                  | Ok (Client.Checked _) -> ()
                  | Ok (Client.Refused msg) -> Alcotest.failf "refused: %s" msg
                  | Error e -> Alcotest.fail (Client.err_to_string e))
            done;
            Thread.join blocker;
            Alcotest.(check bool) "at least one request shed" true (!shed > 0)));
    t "worker death answered with a structured error, daemon survives" `Quick
      (fun () ->
        with_sup_daemon ~allow_chaos:true (fun _ addr ->
            with_client addr (fun c ->
                match
                  Client.check_buffer c plain ~name:"__chaos_exit__"
                    ~contents:"int x;"
                with
                | Ok (Client.Refused msg) ->
                  Alcotest.(check bool) "names the worker failure" true
                    (contains_sub msg "worker")
                | Ok _ -> Alcotest.fail "expected a structured refusal"
                | Error e -> Alcotest.fail (Client.err_to_string e));
            with_client addr (fun c ->
                let r =
                  expect_checked
                    (Client.check_buffer c plain ~name:"b.c"
                       ~contents:buggy_src)
                in
                Alcotest.(check int) "daemon recovered on a fresh worker" 1
                  r.Client.cr_exit)));
    t "supervised drain under load: zero admitted responses lost" `Quick
      (fun () ->
        with_sup_daemon (fun srv addr ->
            let n = 6 in
            let completed = Atomic.make 0
            and refused = Atomic.make 0
            and lost = Atomic.make 0 in
            let worker _ =
              match Client.connect addr with
              | Error _ -> Atomic.incr refused
              | Ok c ->
                Fun.protect
                  ~finally:(fun () -> Client.close c)
                  (fun () ->
                    match
                      Client.check_buffer c plain ~name:"b.c"
                        ~contents:buggy_src
                    with
                    | Ok (Client.Checked _) -> Atomic.incr completed
                    | Ok (Client.Refused _) | Ok (Client.Overloaded _) ->
                      Atomic.incr refused
                    | Error _ -> Atomic.incr lost)
            in
            let threads = List.init n (fun i -> Thread.create worker i) in
            Thread.delay 0.05;
            Serve.Server.initiate_drain srv;
            List.iter Thread.join threads;
            Alcotest.(check int) "lost" 0 (Atomic.get lost);
            Alcotest.(check int)
              "every request accounted" n
              (Atomic.get completed + Atomic.get refused)));
    t "client errors: a refused connection is not a timeout" `Quick (fun () ->
        (match
           Client.connect (Proto.Unix_sock "/tmp/mcsup-no-such-daemon.sock")
         with
        | Error { Client.e_kind = Client.E_refused; _ } -> ()
        | Error e ->
          Alcotest.failf "expected refused: %s" (Client.err_to_string e)
        | Ok _ -> Alcotest.fail "connected to nothing");
        (* a listener that accepts but never answers: the read deadline
           must classify as timeout, not refusal *)
        let path =
          Filename.concat
            (Filename.get_temp_dir_name ())
            (Printf.sprintf "mcsup-mute-%d.sock" (Unix.getpid ()))
        in
        (try Unix.unlink path with _ -> ());
        let l = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind l (Unix.ADDR_UNIX path);
        Unix.listen l 1;
        Fun.protect
          ~finally:(fun () ->
            (try Unix.close l with _ -> ());
            try Unix.unlink path with _ -> ())
          (fun () ->
            match Client.connect ~read_timeout:0.2 (Proto.Unix_sock path) with
            | Ok c ->
              Fun.protect
                ~finally:(fun () -> Client.close c)
                (fun () ->
                  match Client.ping c with
                  | Error { Client.e_kind = Client.E_timeout; _ } -> ()
                  | Error e ->
                    Alcotest.failf "expected timeout: %s"
                      (Client.err_to_string e)
                  | Ok () -> Alcotest.fail "mute daemon answered")
            | Error e ->
              Alcotest.failf "connect to mute listener: %s"
                (Client.err_to_string e)));
    t "circuit breaker: opens, fast-fails, half-open probe re-opens" `Quick
      (fun () ->
        Client.breaker_reset ();
        Client.set_breaker ~threshold:2 ~cooldown_ms:200 ();
        let dead = Proto.Unix_sock "/tmp/mcsup-dead-daemon.sock" in
        Fun.protect
          ~finally:(fun () ->
            Client.set_breaker ~threshold:5 ~cooldown_ms:2000 ();
            Client.breaker_reset ())
          (fun () ->
            Alcotest.(check bool)
              "starts closed" true
              (Client.breaker_state dead = `Closed);
            let attempt () =
              Client.with_retry ~attempts:1 ~base_backoff_ms:1 dead Client.ping
            in
            ignore (attempt ());
            ignore (attempt ());
            Alcotest.(check bool)
              "open after threshold" true
              (Client.breaker_state dead = `Open);
            (match attempt () with
            | Error { Client.e_kind = Client.E_refused; e_msg } ->
              Alcotest.(check bool) "fast-fail names the breaker" true
                (contains_sub e_msg "circuit open")
            | Error e ->
              Alcotest.failf "expected fast-fail: %s" (Client.err_to_string e)
            | Ok () -> Alcotest.fail "dead daemon answered");
            Thread.delay 0.25;
            (* cooldown elapsed: the half-open probe runs, fails against
               the still-dead endpoint, and re-opens the breaker *)
            (match attempt () with
            | Error _ -> ()
            | Ok () -> Alcotest.fail "dead daemon answered the probe");
            Alcotest.(check bool)
              "probe failure re-opens" true
              (Client.breaker_state dead = `Open)));
  ]

(* ------------------------------------------------------------------ *)
(* Telemetry: stats formats, metrics, access log, flight recorder      *)
(* ------------------------------------------------------------------ *)

let telemetry_cases =
  [
    t "stats exposition: text and json agree on the counters" `Quick
      (fun () ->
        with_daemon (fun d ->
            with_client (Oracle.addr d) (fun c ->
                ignore
                  (expect_checked
                     (Client.check_buffer c plain ~name:"b.c"
                        ~contents:buggy_src));
                (match Client.stats c with
                | Ok s ->
                  Alcotest.(check bool) "text mentions requests" true
                    (contains_sub s "requests")
                | Error e -> Alcotest.fail (Client.err_to_string e));
                match Client.stats_json c with
                | Error e -> Alcotest.fail (Client.err_to_string e)
                | Ok j ->
                  Alcotest.(check bool) "one object" true
                    (String.length j > 2 && j.[0] = '{');
                  Alcotest.(check bool) "nested session block" true
                    (contains_sub j "\"session\":");
                  (match json_int_field j "requests" with
                  | Some n ->
                    Alcotest.(check bool) "served at least one" true (n >= 1)
                  | None -> Alcotest.fail "no requests field");
                  (match json_int_field j "findings" with
                  | Some n ->
                    Alcotest.(check bool) "session findings counted" true
                      (n >= 1)
                  | None -> Alcotest.fail "no session findings field"))));
    t "metrics exposition: required series present and monotone" `Quick
      (fun () ->
        with_daemon (fun d ->
            with_client (Oracle.addr d) (fun c ->
                ignore
                  (expect_checked
                     (Client.check_buffer c plain ~name:"b.c"
                        ~contents:buggy_src));
                let scrape () =
                  match Client.metrics c Proto.M_prom with
                  | Ok m -> m
                  | Error e -> Alcotest.fail (Client.err_to_string e)
                in
                let m1 = scrape () in
                List.iter
                  (fun series ->
                    Alcotest.(check bool) (series ^ " present") true
                      (contains_sub m1 series))
                  [
                    "mcheckd_requests_total";
                    "mcheckd_inflight";
                    "mcheckd_request_ms_bucket";
                    "mcheckd_request_ms_sum";
                    "mcheckd_request_ms_count";
                    "mcheck_unit_cache_probes_total";
                    "mcheck_unit_cache_hits_total";
                  ];
                ignore
                  (expect_checked
                     (Client.check_buffer c plain ~name:"b2.c"
                        ~contents:buggy_src));
                let m2 = scrape () in
                let v text =
                  match prom_value text "mcheckd_requests_total" with
                  | Some f -> f
                  | None -> Alcotest.fail "requests_total sample missing"
                in
                Alcotest.(check bool) "requests counter is monotone" true
                  (v m2 >= v m1 +. 1.0);
                match Client.metrics c Proto.M_json with
                | Error e -> Alcotest.fail (Client.err_to_string e)
                | Ok j ->
                  Alcotest.(check bool) "json carries the latency hist" true
                    (contains_sub j "mcheckd_request_ms");
                  Alcotest.(check bool) "json carries quantiles" true
                    (contains_sub j "\"p50_ms\":"))));
    t "access log: one line per admitted request across a drain" `Quick
      (fun () ->
        let log_path = Filename.temp_file "mcheckd-access" ".jsonl" in
        Fun.protect
          ~finally:(fun () -> try Sys.remove log_path with _ -> ())
          (fun () ->
            let telemetry =
              {
                Serve.Server.default_telemetry with
                tel_access_log = Some log_path;
              }
            in
            let d = Oracle.start ~telemetry () in
            let n = 6 in
            let completed = Atomic.make 0
            and refused = Atomic.make 0
            and lost = Atomic.make 0 in
            let worker _ =
              match Client.connect (Oracle.addr d) with
              | Error _ -> Atomic.incr lost
              | Ok c ->
                Fun.protect
                  ~finally:(fun () -> Client.close c)
                  (fun () ->
                    match
                      Client.check_buffer c plain ~name:"b.c"
                        ~contents:buggy_src
                    with
                    | Ok (Client.Checked _) -> Atomic.incr completed
                    | Ok (Client.Refused _) | Ok (Client.Overloaded _) ->
                      Atomic.incr refused
                    | Error _ -> Atomic.incr lost)
            in
            let threads = List.init n (fun i -> Thread.create worker i) in
            Thread.delay 0.002;
            Oracle.stop d;
            List.iter Thread.join threads;
            Alcotest.(check int) "lost" 0 (Atomic.get lost);
            (* the daemon has drained: every admitted check wrote exactly
               one line, every refused one a line marked refused *)
            let lines =
              String.split_on_char '\n' (read_file log_path)
              |> List.filter (fun l -> String.trim l <> "")
            in
            let buffer_lines =
              List.filter
                (fun l -> contains_sub l "\"kind\":\"check_buffer\"")
                lines
            in
            let refused_lines =
              List.filter
                (fun l -> contains_sub l "\"outcome\":\"refused\"")
                buffer_lines
            in
            Alcotest.(check int) "one line per admitted request"
              (Atomic.get completed)
              (List.length buffer_lines - List.length refused_lines);
            Alcotest.(check int) "one line per refused request"
              (Atomic.get refused)
              (List.length refused_lines);
            List.iter
              (fun l ->
                Alcotest.(check bool) "line carries a trace id" true
                  (contains_sub l "\"trace\":\"t-"))
              buffer_lines));
    t "a fault-barrier trip lands in the flight recorder" `Quick (fun () ->
        with_daemon (fun d ->
            (* the hook is installed after the daemon warmed, so only the
               request below trips it; Mcd spawns its pool per schedule,
               so the workers see the hook *)
            Engine.set_fault_hook
              (Some (fun ~checker:_ ~func -> String.equal func "H"));
            Fun.protect
              ~finally:(fun () -> Engine.set_fault_hook None)
              (fun () ->
                with_client (Oracle.addr d) (fun c ->
                    (match
                       Client.check_buffer c plain ~name:"b.c"
                         ~contents:buggy_src
                     with
                    | Error e -> Alcotest.fail (Client.err_to_string e)
                    | Ok _ -> ());
                    (* same-connection fetch: the entry is committed
                       before the daemon reads this request's frame *)
                    (match Client.flight c with
                    | Error e -> Alcotest.fail (Client.err_to_string e)
                    | Ok dump ->
                      Alcotest.(check bool) "dump shows the partial outcome"
                        true
                        (contains_sub dump "\"outcome\":\"partial\""));
                    let fr =
                      Serve.Server.flight_recorder (Oracle.server d)
                    in
                    Alcotest.(check bool) "tail rule retained the fault"
                      true
                      (Mctel.Flight.retained fr >= 1);
                    Alcotest.(check bool)
                      "a notable check_buffer entry survives" true
                      (List.exists
                         (fun e ->
                           e.Mctel.Flight.fl_notable
                           && String.equal e.Mctel.Flight.fl_kind
                                "check_buffer"
                           && String.equal e.Mctel.Flight.fl_outcome
                                "partial")
                         (Mctel.Flight.entries fr))))));
    t "a client trace id spans server, session, and scheduler" `Quick
      (fun () ->
        with_daemon (fun d ->
            with_client (Oracle.addr d) (fun c ->
                let trace = Mctel.Trace.mint () in
                ignore
                  (expect_checked
                     (Client.check_buffer c
                        { plain with Proto.co_trace = trace }
                        ~name:"b.c" ~contents:buggy_src));
                (match Client.flight c with
                | Error e -> Alcotest.fail (Client.err_to_string e)
                | Ok dump ->
                  Alcotest.(check bool) "dump carries the minted trace" true
                    (contains_sub dump trace));
                let fr = Serve.Server.flight_recorder (Oracle.server d) in
                match
                  List.find_opt
                    (fun e -> String.equal e.Mctel.Flight.fl_trace trace)
                    (Mctel.Flight.entries fr)
                with
                | None -> Alcotest.fail "no flight entry for the trace"
                | Some e ->
                  let names =
                    List.map
                      (fun sp -> sp.Mcobs.sp_name)
                      e.Mctel.Flight.fl_spans
                  in
                  List.iter
                    (fun name ->
                      Alcotest.(check bool) (name ^ " span in the tree")
                        true (List.mem name names))
                    [ "serve.request"; "api.check_buffer"; "mcd.schedule" ])));
  ]

(* ------------------------------------------------------------------ *)
(* Dogfood: msg_length over a Clite model of Proto's framing           *)
(* ------------------------------------------------------------------ *)

(* [Proto.frame]/[write_frame] put the payload's exact length in the
   header and send the payload bytes with it; [read_frame] trusts the
   header's claim.  Modeled on FLASH primitives, that is precisely the
   contract [msg_length] checks: a nonzero length claim must travel
   with data (F_DATA), a zero claim must not.  The faithful model must
   pass; a variant that claims LEN_NODATA while sending payload bytes
   — a frame whose header lies about its body — must be flagged. *)

let proto_spec =
  {
    Flash_api.p_name = "serve-proto-model";
    p_handlers =
      List.map
        (fun name ->
          {
            Flash_api.h_name = name;
            h_kind = Flash_api.Hw_handler;
            h_lane_allowance = [| 1; 1; 1; 1 |];
            h_no_stack = false;
          })
        [ "write_frame"; "write_empty_frame"; "write_frame_lying_header" ];
    p_free_funcs = [];
    p_use_funcs = [];
    p_cond_free_funcs = [];
  }

let faithful_model =
  (* write_frame: header length = payload length, payload attached *)
  "void write_frame(void) { HANDLER_GLOBALS(header.nh.len) = LEN_WORD; \
   NI_SEND(MSG_PUT, F_DATA, 0, W_NOWAIT, 1, 0); } void \
   write_empty_frame(void) { HANDLER_GLOBALS(header.nh.len) = LEN_NODATA; \
   NI_SEND(MSG_NAK, F_NODATA, 0, W_NOWAIT, 1, 0); }"

let lying_model =
  "void write_frame_lying_header(void) { HANDLER_GLOBALS(header.nh.len) = \
   LEN_NODATA; NI_SEND(MSG_PUT, F_DATA, 0, W_NOWAIT, 1, 0); }"

let parse src = Frontend.of_strings [ ("proto_model.c", Prelude.text ^ src) ]

let dogfood_cases =
  [
    t "the faithful framing model passes msg_length" `Quick (fun () ->
        Alcotest.(check int) "no diagnostics" 0
          (List.length
             (Msg_length.run ~spec:proto_spec (parse faithful_model))));
    t "a header that lies about its payload is flagged" `Quick (fun () ->
        Alcotest.(check int) "one diagnostic" 1
          (List.length
             (Msg_length.run ~spec:proto_spec (parse lying_model))));
  ]

let suite =
  ( "serve",
    List.map QCheck_alcotest.to_alcotest
      [
        prop_request_roundtrip;
        prop_response_roundtrip;
        prop_decode_total;
        prop_trailing_garbage_rejected;
      ]
    @ framing_cases @ daemon_cases @ supervised_cases @ telemetry_cases
    @ dogfood_cases )
