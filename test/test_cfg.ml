(** Control-flow graph construction and path-statistics tests. *)

let t = Alcotest.test_case

let cfg_of src =
  let tu = Frontend.of_string ~file:"t.c" src in
  match Ast.functions tu with
  | [ f ] -> Cfg.build f
  | _ -> Alcotest.fail "expected exactly one function"

let paths_of src = (Paths.analyze (cfg_of src)).Paths.n_paths

let structure_cases =
  [
    t "straight line has one path" `Quick (fun () ->
        Alcotest.(check int) "paths" 1
          (paths_of "void f(void) { a = 1; b = 2; c = 3; }"));
    t "if adds a path" `Quick (fun () ->
        Alcotest.(check int) "paths" 2
          (paths_of "void f(void) { if (a) b = 1; c = 2; }"));
    t "if-else two paths" `Quick (fun () ->
        Alcotest.(check int) "paths" 2
          (paths_of "void f(void) { if (a) b = 1; else b = 2; }"));
    t "sequential ifs multiply" `Quick (fun () ->
        Alcotest.(check int) "paths" 8
          (paths_of
             "void f(void) { if (a) x = 1; if (b) x = 2; if (c) x = 3; }"));
    t "early return adds one path, not a product" `Quick (fun () ->
        (* return path (1) + fall-through into the if-else (2) *)
        Alcotest.(check int) "paths" 3
          (paths_of
             "void f(void) { if (a) { return; } if (b) { x(); } else { y(); } }"));
    t "while loop: acyclic paths" `Quick (fun () ->
        (* enter-once-or-skip under the back-edge-cut convention *)
        Alcotest.(check int) "paths" 2
          (paths_of "void f(void) { while (a) { b = b + 1; } c = 1; }"));
    t "do-while single body pass" `Quick (fun () ->
        Alcotest.(check int) "paths" 1
          (paths_of "void f(void) { do { b = 1; } while (a); }"));
    t "for loop like while" `Quick (fun () ->
        Alcotest.(check int) "paths" 2
          (paths_of "void f(void) { for (i = 0; i < 4; i++) { b = i; } }"));
    t "switch fans out per case" `Quick (fun () ->
        Alcotest.(check int) "paths" 3
          (paths_of
             "void f(void) { switch (x) { case 1: a(); break; case 2: b(); \
              break; default: c(); } }"));
    t "switch fall-through still covered" `Quick (fun () ->
        Alcotest.(check int) "paths" 3
          (paths_of
             "void f(void) { switch (x) { case 1: a(); case 2: b(); break; \
              default: c(); } }"));
    t "switch without default can skip" `Quick (fun () ->
        Alcotest.(check int) "paths" 2
          (paths_of "void f(void) { switch (x) { case 1: a(); break; } y(); }"));
    t "break exits the loop" `Quick (fun () ->
        Alcotest.(check int) "paths" 3
          (paths_of
             "void f(void) { while (a) { if (b) { break; } c(); } d(); }"));
    t "continue returns to the head" `Quick (fun () ->
        let cfg =
          cfg_of
            "void f(void) { while (a) { if (b) { continue; } c(); } d(); }"
        in
        Alcotest.(check bool) "has a back edge" true
          (Cfg.back_edges cfg <> []));
    t "goto forward" `Quick (fun () ->
        Alcotest.(check int) "paths" 2
          (paths_of
             "void f(void) { if (a) { goto out; } b(); out: c(); }"));
    t "goto backward forms a loop" `Quick (fun () ->
        let cfg =
          cfg_of "void f(void) { top: a(); if (b) { goto top; } c(); }"
        in
        Alcotest.(check bool) "has a back edge" true
          (Cfg.back_edges cfg <> []));
    t "return edges reach exit" `Quick (fun () ->
        let cfg =
          cfg_of "void f(void) { if (a) { return; } b(); return; }"
        in
        let returns =
          Array.to_list cfg.Cfg.nodes
          |> List.filter (fun n ->
                 match n.Cfg.kind with Cfg.Return _ -> true | _ -> false)
        in
        Alcotest.(check int) "two returns" 2 (List.length returns);
        List.iter
          (fun (n : Cfg.node) ->
            Alcotest.(check bool) "return flows to exit" true
              (List.exists (fun (_, s) -> s = cfg.Cfg.exit) n.Cfg.succs))
          returns);
  ]

(* well-formedness invariants, checked over randomly generated handlers *)
let well_formed (cfg : Cfg.t) : bool =
  let n = Cfg.n_nodes cfg in
  let ok = ref true in
  Array.iter
    (fun (node : Cfg.node) ->
      List.iter
        (fun (_, s) ->
          if s < 0 || s >= n then ok := false
          else if not (List.mem node.Cfg.id (Cfg.node cfg s).Cfg.preds) then
            ok := false)
        node.Cfg.succs)
    cfg.Cfg.nodes;
  (* exit is reachable from entry *)
  (if not (List.mem cfg.Cfg.exit (Cfg.reachable cfg)) then ok := false);
  !ok

let random_cfg seed =
  let rng = Rng.create ~seed in
  let g = Skeletons.gctx ~rng ~flavor:Skeletons.Rac in
  for _ = 1 to 3 do
    ignore (Skeletons.fresh_local g)
  done;
  let body =
    match Rng.int rng 4 with
    | 0 ->
      Skeletons.dir_consult_body g ~bug:Skeletons.No_bug
        ~pad:(Rng.range rng 1 6) ~branches:(Rng.range rng 0 3) ()
    | 1 ->
      Skeletons.uncached_body g ~bug:Skeletons.No_bug ~pad:(Rng.range rng 1 6)
        ~branches:(Rng.range rng 0 3) ~write:(Rng.bool rng) ()
    | 2 ->
      Skeletons.inval_body g ~bug:Skeletons.No_bug ~pad:(Rng.range rng 1 6)
        ~branches:(Rng.range rng 0 2) ()
    | _ ->
      Skeletons.proc_body g ~style:(Skeletons.P_switch (Rng.range rng 2 8))
        ~bug:Skeletons.No_bug ~pad:(Rng.range rng 2 10)
  in
  let decls = List.rev_map (fun v -> Cb.decl_long v) g.Skeletons.locals in
  Cfg.build
    (Cb.func "F" ([ Cb.decl_long "addr"; Cb.decl_long "src" ] @ decls @ body))

let prop_well_formed =
  QCheck.Test.make ~name:"random CFGs are well-formed" ~count:100
    QCheck.(int_bound 1_000_000)
    (fun seed -> well_formed (random_cfg seed))

let prop_count_matches_enumeration =
  QCheck.Test.make
    ~name:"DP path count equals explicit enumeration (small CFGs)" ~count:60
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let cfg = random_cfg seed in
      let stats = Paths.analyze cfg in
      if stats.Paths.n_paths > 5_000 then true
      else
        let listed = Paths.enumerate ~limit:6_000 cfg in
        List.length listed = stats.Paths.n_paths)

let prop_max_at_least_avg =
  QCheck.Test.make ~name:"max path length >= average" ~count:60
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let stats = Paths.analyze (random_cfg seed) in
      float_of_int stats.Paths.max_length >= Paths.average_length stats)

let suite =
  ( "cfg+paths",
    structure_cases
    @ [
        QCheck_alcotest.to_alcotest prop_well_formed;
        QCheck_alcotest.to_alcotest prop_count_matches_enumeration;
        QCheck_alcotest.to_alcotest prop_max_at_least_avg;
      ] )
