(** Additional simulator and golden-protocol coverage: scaling, seed
    robustness, conservation laws, and source round trips. *)

let t = Alcotest.test_case

let run ?(transactions = 800) ?(n_nodes = 4) ?(n_lines = 8) ?(seed = 42)
    variant =
  Sim.run
    {
      Sim.default_config with
      Sim.transactions;
      n_nodes;
      n_lines;
      seed;
      variant;
    }

let cases =
  [
    t "clean protocol scales to 8 nodes" `Slow (fun () ->
        let r = run ~n_nodes:8 ~n_lines:16 Golden.Clean in
        Alcotest.(check int) "faults" 0 (List.length r.Sim.faults);
        Alcotest.(check int) "corruptions" 0 r.Sim.stats.Sim.corruptions;
        Alcotest.(check int) "leaks" 0 r.Sim.leaked_buffers);
    t "clean protocol scales to 2 nodes" `Slow (fun () ->
        let r = run ~n_nodes:2 ~n_lines:4 Golden.Clean in
        Alcotest.(check int) "faults" 0 (List.length r.Sim.faults);
        Alcotest.(check int) "corruptions" 0 r.Sim.stats.Sim.corruptions);
    t "clean protocol is clean across seeds" `Slow (fun () ->
        List.iter
          (fun seed ->
            let r = run ~transactions:500 ~seed Golden.Clean in
            Alcotest.(check int)
              (Printf.sprintf "faults at seed %d" seed)
              0
              (List.length r.Sim.faults);
            Alcotest.(check int)
              (Printf.sprintf "corruptions at seed %d" seed)
              0 r.Sim.stats.Sim.corruptions)
          [ 1; 7; 1234 ]);
    t "every delivered message runs exactly one handler" `Slow (fun () ->
        let r = run Golden.Clean in
        Alcotest.(check int) "messages = handler runs"
          r.Sim.stats.Sim.messages r.Sim.stats.Sim.handler_runs);
    t "dirty-remote traffic is actually exercised" `Slow (fun () ->
        (* the NAK/intervention/writeback machinery must fire, otherwise
           the rare paths the bugs sit on are not reachable *)
        let r = run Golden.Clean in
        Alcotest.(check bool) "NAKs occurred" true (r.Sim.stats.Sim.naks > 0));
    t "uncached traffic reaches its handler" `Slow (fun () ->
        let r = run Golden.Clean in
        Alcotest.(check bool) "uncached ops ran" true
          (r.Sim.stats.Sim.uncached > 0));
    t "buggy protocol under a write-free workload leaks less" `Slow
      (fun () ->
        (* without writes there is no dirty state, so the double-free
           corner is unreachable: rare-path bugs need the right traffic *)
        let cfg =
          {
            Sim.default_config with
            Sim.transactions = 800;
            variant = Golden.Buggy;
            write_pct = 0;
            uncached_pct = 0;
          }
        in
        let r = Sim.run cfg in
        Alcotest.(check bool) "no double free without writes" true
          (not (List.mem_assoc "double free" r.Sim.first_detection)));
    t "golden sources parse and print stably" `Quick (fun () ->
        List.iter
          (fun variant ->
            let tus = Golden.program variant in
            List.iter
              (fun tu ->
                let printed = Pp.tunit_to_string tu in
                let tu2 = Parser.parse_string ~file:"g.c" printed in
                Alcotest.(check int) "function count"
                  (List.length (Ast.functions tu))
                  (List.length (Ast.functions tu2)))
              tus)
          [ Golden.Clean; Golden.Buggy ]);
    t "handler map covers every opcode the protocol sends" `Quick (fun () ->
        let tus = Golden.program Golden.Clean in
        let sent_opcodes = ref [] in
        List.iter
          (fun tu ->
            List.iter
              (fun (f : Ast.func) ->
                List.iter
                  (fun s ->
                    Ast.iter_stmt_exprs
                      (fun e ->
                        Ast.iter_expr
                          (fun e ->
                            match Cutil.ni_opcode e with
                            | Some op
                              when not (List.mem op !sent_opcodes) ->
                              sent_opcodes := op :: !sent_opcodes
                            | _ -> ())
                          e)
                      s)
                  f.Ast.f_body)
              (Ast.functions tu))
          tus;
        List.iter
          (fun op ->
            Alcotest.(check bool)
              (op ^ " has a handler")
              true
              (List.mem_assoc op Golden.handler_map))
          !sent_opcodes);
    t "spurious has_buffer annotations are reported unused" `Quick
      (fun () ->
        let spec =
          {
            Flash_api.p_name = "t";
            p_handlers =
              [
                {
                  Flash_api.h_name = "H";
                  h_kind = Flash_api.Hw_handler;
                  h_lane_allowance = [| 1; 1; 1; 1 |];
                  h_no_stack = false;
                };
              ];
            p_free_funcs = [];
            p_use_funcs = [];
            p_cond_free_funcs = [];
          }
        in
        let tus =
          Frontend.of_strings
            [
              ( "t.c",
                Prelude.text
                ^ "void H(void) { has_buffer(); FREE_DB(); }" );
            ]
        in
        let outcome = Buffer_mgmt.run_with_annotations ~spec tus in
        Alcotest.(check int) "unused" 1
          outcome.Buffer_mgmt.unused_annotations;
        Alcotest.(check int) "useful" 0
          outcome.Buffer_mgmt.useful_annotations);
  ]

let suite = ("sim scaling + golden", cases)

(* the five directory organisations all sustain the same coherent traffic *)
let directory_cases =
  List.map
    (fun (module D : Directory.S) ->
      t
        (Printf.sprintf "clean protocol runs on the %s directory" D.name)
        `Slow
        (fun () ->
          let r =
            Sim.run
              {
                Sim.default_config with
                Sim.transactions = 600;
                directory = (module D);
              }
          in
          Alcotest.(check int) "faults" 0 (List.length r.Sim.faults);
          Alcotest.(check int) "corruptions" 0 r.Sim.stats.Sim.corruptions;
          Alcotest.(check int) "leaks" 0 r.Sim.leaked_buffers;
          Alcotest.(check bool) "directory invariant" true
            r.Sim.directory_ok))
    Directory.all

let suite =
  let name, cases0 = suite in
  (name, cases0 @ directory_cases)
