(** Engine equivalence property: on loop-free functions, the memoised
    path-sensitive engine must report exactly the diagnostic sites that a
    naive one-path-at-a-time replay reports.  This is the correctness
    argument for the (node, state) memoisation trick. *)

let t = Alcotest.test_case

(* a reference interpreter for state machines: replay one enumerated path
   explicitly, no memoisation *)
let replay_path (sm : 'st Sm.t) ~(at_exit : 'st Engine.exit_hook option)
    (cfg : Cfg.t) (func : Ast.func) (path : int list) (emit : Diag.t -> unit)
    : unit =
  let state = ref (Option.get (sm.Sm.start func)) in
  let stopped = ref false in
  let rec walk = function
    | [] -> ()
    | id :: rest ->
      if not !stopped then begin
        let node = Cfg.node cfg id in
        let exprs =
          match node.Cfg.kind with
          | Cfg.Stmt { Ast.sdesc = Ast.Sexpr e; _ } -> [ e ]
          | Cfg.Stmt { Ast.sdesc = Ast.Sdecl d; _ } ->
            Option.to_list d.Ast.v_init
          | Cfg.Branch e | Cfg.Switch e ->
            if sm.Sm.observe_branches then [ e ] else []
          | Cfg.Return (Some e) -> [ e ]
          | _ -> []
        in
        let events = List.concat_map Engine.subexprs_post exprs in
        List.iter
          (fun event ->
            if not !stopped then
              let rules = sm.Sm.rules !state @ sm.Sm.all in
              match
                List.find_map
                  (fun (r : 'st Sm.rule) ->
                    match Pattern.match_expr r.Sm.pattern event with
                    | Some b -> Some (r, b)
                    | None -> None)
                  rules
              with
              | None -> ()
              | Some (r, bindings) -> (
                let ctx =
                  {
                    Sm.func;
                    matched = event;
                    loc = event.Ast.eloc;
                    bindings;
                    trace = [];
                    emit;
                  }
                in
                match r.Sm.action ctx with
                | Sm.Stay -> ()
                | Sm.Goto next -> state := next
                | Sm.Stop -> stopped := true))
          events;
        (* branch refinement along the edge actually taken *)
        (if not !stopped then
           match (sm.Sm.branch, node.Cfg.kind, rest) with
           | Some refine, Cfg.Branch cond, next :: _ -> (
             match
               List.find_opt (fun (_, s) -> s = next) node.Cfg.succs
             with
             | Some (Cfg.True, _) -> state := refine !state cond true
             | Some (Cfg.False, _) -> state := refine !state cond false
             | _ -> ())
           | _ -> ());
        if (not !stopped) && id = cfg.Cfg.exit then
          Option.iter
            (fun hook ->
              let ctx =
                {
                  Sm.func;
                  matched = Ast.ident "return";
                  loc = node.Cfg.loc;
                  bindings = Binding.empty;
                  trace = [];
                  emit;
                }
              in
              hook ctx !state)
            at_exit;
        walk rest
      end
  in
  walk path

let site_set (diags : Diag.t list) =
  List.sort_uniq compare
    (List.map
       (fun (d : Diag.t) -> (d.Diag.loc, d.Diag.message, d.Diag.checker))
       diags)

(* a buffer-discipline-like machine exercising transitions, stop, branch
   refinement, and an exit hook *)
type st = Has | Hasnt

let test_sm : st Sm.t =
  Sm.make ~name:"eq"
    ~start:(fun _ -> Some Has)
    ~rules:(function
      | Has ->
        [
          Sm.goto_rule (Pattern.expr "FREE_DB()") Hasnt;
          Sm.stop_rule (Pattern.expr "give_up()");
        ]
      | Hasnt ->
        [
          Sm.err_rule ~checker:"eq" (Pattern.expr "FREE_DB()") "double free";
          Sm.rule (Pattern.expr "ALLOCATE_DB()") (fun _ -> Sm.Goto Has);
        ])
    ~branch:(fun st cond dir ->
      match Ast.callee_name cond with
      | Some "TRANSFERRED" -> if dir then Hasnt else st
      | _ -> st)
    ()

let exit_hook : st Engine.exit_hook =
 fun ctx st -> if st = Has then Sm.err ~checker:"eq" ctx "leak"

(* loop-free random handler bodies *)
let random_func seed : Ast.func =
  let rng = Rng.create ~seed in
  let g = Skeletons.gctx ~rng ~flavor:Skeletons.Bitvector in
  for _ = 1 to 3 do
    ignore (Skeletons.fresh_local g)
  done;
  let bug =
    Rng.choose rng
      [
        Skeletons.No_bug; Skeletons.Double_free; Skeletons.Buffer_leak;
        Skeletons.Buf_annot_fp; Skeletons.Buf_data_fp;
      ]
  in
  let body =
    match Rng.int rng 3 with
    | 0 ->
      Skeletons.dir_consult_body g ~bug ~pad:(Rng.range rng 1 5)
        ~branches:(Rng.range rng 0 3) ()
    | 1 ->
      Skeletons.writeback_body g ~bug ~pad:(Rng.range rng 1 5)
        ~branches:(Rng.range rng 0 3) ()
    | _ ->
      Skeletons.uncached_body g ~bug ~pad:(Rng.range rng 1 5)
        ~branches:(Rng.range rng 0 3) ~write:(Rng.bool rng) ()
  in
  let decls = List.rev_map (fun v -> Cb.decl_long v) g.Skeletons.locals in
  Cb.func "F" ([ Cb.decl_long "addr"; Cb.decl_long "src" ] @ decls @ body)

let prop_engine_equals_enumeration =
  QCheck.Test.make
    ~name:"memoised engine = naive path replay (loop-free functions)"
    ~count:80
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let func = random_func seed in
      let cfg = Cfg.build func in
      if Cfg.back_edges cfg <> [] then true (* loop-free only *)
      else begin
        let engine_diags =
          Engine.check ~at_exit:exit_hook test_sm (`Func func)
        in
        let naive = ref [] in
        List.iter
          (fun path ->
            replay_path test_sm ~at_exit:(Some exit_hook) cfg func path
              (fun d -> naive := d :: !naive))
          (Paths.enumerate ~limit:20_000 cfg);
        site_set engine_diags = site_set !naive
      end)

(* a couple of targeted engine behaviours not covered elsewhere *)
let extra_cases =
  [
    t "observe_branches=false hides conditions" `Quick (fun () ->
        let sm : st Sm.t =
          Sm.make ~name:"blind" ~observe_branches:false
            ~start:(fun _ -> Some Has)
            ~rules:(fun _ ->
              [ Sm.err_rule ~checker:"blind" (Pattern.expr "evt()") "seen" ])
            ()
        in
        let tu =
          Frontend.of_string ~file:"t.c"
            "void f(void) { if (evt()) { x = 1; } }"
        in
        Alcotest.(check int) "condition invisible" 0
          (List.length (Engine.check sm (`Unit tu))));
    t "switch conditions are observed" `Quick (fun () ->
        let sm : st Sm.t =
          Sm.make ~name:"sw"
            ~start:(fun _ -> Some Has)
            ~rules:(fun _ ->
              [ Sm.err_rule ~checker:"sw" (Pattern.expr "evt()") "seen" ])
            ()
        in
        let tu =
          Frontend.of_string ~file:"t.c"
            "void f(void) { switch (evt()) { case 1: x = 1; break; } }"
        in
        Alcotest.(check int) "seen once" 1
          (List.length (Engine.check sm (`Unit tu))));
    t "events fire in evaluation order inside one statement" `Quick
      (fun () ->
        let order = ref [] in
        let sm : st Sm.t =
          Sm.make ~name:"ord"
            ~start:(fun _ -> Some Has)
            ~rules:(fun _ ->
              [
                Sm.rule
                  (Pattern.expr ~decls:[ ("k", Pattern.Constant) ] "g(k)")
                  (fun ctx ->
                    order :=
                      Pp.expr_to_string ctx.Sm.matched :: !order;
                    Sm.Stay);
              ])
            ()
        in
        let tu =
          Frontend.of_string ~file:"t.c"
            "void f(void) { x = g(1) + h(g(2), g(3)); }"
        in
        ignore (Engine.check sm (`Unit tu));
        Alcotest.(check (list string)) "order"
          [ "g(1)"; "g(2)"; "g(3)" ]
          (List.rev !order));
  ]

let suite =
  ( "engine equivalence",
    QCheck_alcotest.to_alcotest prop_engine_equals_enumeration :: extra_cases
  )
