(** The metal compiler, held to the interpreter at every lowering
    stage: surface parse -> typed IR (name resolution, targets), IR ->
    transition tables (deterministic codegen, printable round trip),
    and tables -> engine runs that match {!Mdsl} interpretation
    step for step — on hand-written programs, on random well-formed
    machines over random drivers, and on the fuzzer's generated
    programs under the three in-tree specs (the O7 smoke). *)

let t = Alcotest.test_case

let spec_src =
  {|
sm abc {
  decl { scalar } a;
  start:
    { FOO(a); } ==> second ;
  second:
    { BAR(a); } ==> stop
  | { BAZ(a); } ==> { err("boom"); } ;
}
|}

let ir_of src =
  match Mir.of_surface (Mparse.parse src) with
  | Ok ir -> ir
  | Error es ->
    Alcotest.failf "compiler rejected: %s"
      (String.concat "; " (List.map Mir.render_error es))

let gen_of src = Mcodegen.of_ir (ir_of src)

let load_exn mode src =
  match Mrun.load ~mode src with
  | Ok m -> m
  | Error es ->
    Alcotest.failf "load failed: %s"
      (String.concat "; " (List.map Mir.render_error es))

let run_both metal_src c_src =
  let tus = Frontend.of_strings [ ("t.c", Prelude.text ^ c_src) ] in
  let run mode =
    List.map Diag.to_string
      (Mrun.check (load_exn mode metal_src) (`Program tus))
  in
  (run Mrun.Mode_interp, run Mrun.Mode_compiled)

(* ------------------------------------------------------------------ *)
(* Surface -> IR                                                       *)
(* ------------------------------------------------------------------ *)

let ir_cases =
  [
    t "states and targets resolve" `Quick (fun () ->
        let ir = ir_of spec_src in
        Alcotest.(check (array string))
          "states" [| "start"; "second" |] ir.Mir.ir_states;
        Alcotest.(check int) "start id" 0 ir.Mir.ir_start;
        (match ir.Mir.ir_rules.(0) with
        | [ r ] ->
          Alcotest.(check bool) "start rule is Goto 1" true
            (r.Mir.r_target = Mir.Goto 1);
          Alcotest.(check bool) "no err" true (r.Mir.r_err = None)
        | rs -> Alcotest.failf "start has %d rules" (List.length rs));
        match ir.Mir.ir_rules.(1) with
        | [ r1; r2 ] ->
          Alcotest.(check bool) "BAR rule stops" true
            (r1.Mir.r_target = Mir.Stop);
          Alcotest.(check bool) "BAZ rule stays" true
            (r2.Mir.r_target = Mir.Stay);
          Alcotest.(check (option string))
            "BAZ err" (Some "boom") r2.Mir.r_err
        | rs -> Alcotest.failf "second has %d rules" (List.length rs));
    t "all-only machine gets a synthetic start" `Quick (fun () ->
        let ir =
          ir_of "sm allonly { decl { scalar } a; all: { FOO(a); } ==> stop ; }"
        in
        Alcotest.(check (array string)) "states" [| "start" |]
          ir.Mir.ir_states;
        Alcotest.(check int) "all rules" 1 (List.length ir.Mir.ir_all));
    t "named patterns resolve through alternation" `Quick (fun () ->
        let ir =
          ir_of
            "sm np { decl { scalar } a;\n\
            \  pat p = { FOO(a) } | { BAR(a) } ;\n\
            \  start: p ==> stop ; }"
        in
        match ir.Mir.ir_rules.(0) with
        | [ r ] ->
          Alcotest.(check int) "two branches" 2
            (List.length r.Mir.r_branches)
        | rs -> Alcotest.failf "start has %d rules" (List.length rs));
  ]

(* ------------------------------------------------------------------ *)
(* IR -> tables                                                        *)
(* ------------------------------------------------------------------ *)

let codegen_cases =
  [
    t "codegen is deterministic" `Quick (fun () ->
        Alcotest.(check string) "two compiles agree"
          (Mcodegen.to_string (gen_of spec_src))
          (Mcodegen.to_string (gen_of spec_src)));
    t "table dump round-trips" `Quick (fun () ->
        let g = gen_of spec_src in
        let s = Mcodegen.to_string g in
        Alcotest.(check string) "to_string . of_string = id" s
          (Mcodegen.to_string (Mcodegen.of_string s)));
    t "in-tree specs round-trip too" `Quick (fun () ->
        let dir =
          match Fuzz_metalc.find_spec_dir () with
          | Some d -> d
          | None -> Alcotest.fail "cannot locate metal/"
        in
        List.iter
          (fun name ->
            let path = Filename.concat dir (name ^ ".metal") in
            let ic = open_in_bin path in
            let src =
              Fun.protect
                ~finally:(fun () -> close_in ic)
                (fun () -> really_input_string ic (in_channel_length ic))
            in
            let s = Mcodegen.to_string (gen_of src) in
            Alcotest.(check string) name s
              (Mcodegen.to_string (Mcodegen.of_string s)))
          [ "wait_for_db"; "msglen_check"; "refcount" ]);
  ]

(* ------------------------------------------------------------------ *)
(* Compiled = interpreted                                              *)
(* ------------------------------------------------------------------ *)

(* a random well-formed machine: 2..4 states chained so every state is
   reachable, distinct call patterns within each scope (the overlap
   check), random stop/goto/err effects *)
let pool = [| "FOO"; "BAR"; "BAZ"; "QUX"; "WAITX"; "READX"; "SENDX" |]

let shuffle rng a =
  let a = Array.copy a in
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  a

let random_machine rng =
  let n = 2 + Random.State.int rng 3 in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "sm rnd {\n  decl { scalar } a;\n";
  for i = 0 to n - 1 do
    Buffer.add_string buf (Printf.sprintf "  s%d:\n" i);
    let names = shuffle rng pool in
    let k = 1 + Random.State.int rng 3 in
    for j = 0 to k - 1 do
      let sep = if j = 0 then "    " else "  | " in
      let target =
        if i < n - 1 && j = 0 then Printf.sprintf "s%d" (i + 1)
        else
          match Random.State.int rng 4 with
          | 0 -> "stop"
          | 1 -> Printf.sprintf "s%d" (Random.State.int rng n)
          | 2 -> Printf.sprintf "{ err(\"e%d\"); }" (Random.State.int rng 3)
          | _ -> Printf.sprintf "s%d" i
      in
      Buffer.add_string buf
        (Printf.sprintf "%s{ %s(a); } ==> %s\n" sep names.(j) target)
    done;
    Buffer.add_string buf "  ;\n"
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let random_driver rng =
  let seq () =
    let len = 2 + Random.State.int rng 5 in
    String.concat " "
      (List.init len (fun _ ->
           Printf.sprintf "%s(x);"
             pool.(Random.State.int rng (Array.length pool))))
  in
  Printf.sprintf "void H(void) { long x; if (x) { %s } %s }" (seq ()) (seq ())

let prop_random_machines =
  QCheck.Test.make ~name:"random machines: compiled = interpreted" ~count:60
    QCheck.small_nat (fun seed ->
      let rng = Random.State.make [| seed; 0xC0FFEE |] in
      let metal = random_machine rng in
      let c_src = random_driver rng in
      let di, dc = run_both metal c_src in
      if di <> dc then
        QCheck.Test.fail_reportf "diverged on:\n%s\n%s\ninterp: %s\ncompiled: %s"
          metal c_src (String.concat " | " di)
          (String.concat " | " dc);
      true)

let prop_fuzz_programs =
  QCheck.Test.make
    ~name:"fuzz programs: O7 oracle quiet under the in-tree specs" ~count:10
    QCheck.small_nat (fun seed ->
      let mc =
        match Fuzz_metalc.create () with
        | Ok t -> t
        | Error e -> QCheck.Test.fail_reportf "%s" e
      in
      let p = Fuzz_gen.generate ~seed () in
      match Fuzz_metalc.oracle mc p with
      | [] -> true
      | fs ->
        QCheck.Test.fail_reportf "%s"
          (String.concat "\n"
             (List.map (Format.asprintf "%a" Fuzz_oracle.pp_failure) fs)))

let diff_cases =
  [
    t "figure-2 race: identical diagnostics" `Quick (fun () ->
        let di, dc =
          run_both
            "sm w { decl { scalar } addr, buf;\n\
            \  start: { WAIT_FOR_DB_FULL(addr); } ==> stop\n\
            \  | { MISCBUS_READ_DB(addr, buf); } ==> { err(\"unsync\"); } ;\n\
             }"
            "void H(void) { long a; if (a) { WAIT_FOR_DB_FULL(a); } a = \
             MISCBUS_READ_DB(a, 0); }"
        in
        Alcotest.(check (list string)) "diags" di dc;
        Alcotest.(check int) "found the race" 1 (List.length dc));
    QCheck_alcotest.to_alcotest prop_random_machines;
    QCheck_alcotest.to_alcotest prop_fuzz_programs;
  ]

let suite =
  ("metalc", ir_cases @ codegen_cases @ diff_cases)
