(** Printer shapes and checker-utility helpers. *)

let t = Alcotest.test_case

(* print a parsed unit and re-parse: structure must survive, and the
   second print must be identical (fixpoint) *)
let stable src =
  let tu = Parser.parse_string ~file:"t.c" src in
  let p1 = Pp.tunit_to_string tu in
  let tu2 = Parser.parse_string ~file:"t.c" p1 in
  let p2 = Pp.tunit_to_string tu2 in
  String.equal p1 p2

let check_stable name src =
  t name `Quick (fun () ->
      Alcotest.(check bool) name true (stable src))

(* stronger variant: the reparsed AST must equal the original (modulo
   locations), not just reach a print fixpoint.  These are the minimized
   regressions for the escape bug the fuzz round-trip oracle exposed:
   the printer used to emit OCaml-style decimal escapes (backslash then
   three digits) that the Clite lexer re-read as an escape plus literal
   digits, silently corrupting string contents. *)
let roundtrip_equal name src =
  t name `Quick (fun () ->
      let tu = Parser.parse_string ~file:"t.c" src in
      let p1 = Pp.tunit_to_string tu in
      let tu2 = Parser.parse_string ~file:"t.c" p1 in
      Alcotest.(check bool) "ast equal" true (Ast.equal_tunit tu tu2);
      Alcotest.(check string) "fixpoint" p1 (Pp.tunit_to_string tu2))

let printer_cases =
  [
    roundtrip_equal "NUL escape in string" "void f(void) { s = \"a\\0b\"; }";
    roundtrip_equal "newline and tab escapes in string"
      "void f(void) { s = \"line1\\nline2\\tend\"; }";
    roundtrip_equal "carriage return in string and char"
      "void f(void) { s = \"cr\\rend\"; c = '\\r'; }";
    roundtrip_equal "quote and backslash escapes"
      "void f(void) { s = \"quo\\\"te\\\\slash\"; d = '\\\\'; q = '\\''; }";
    roundtrip_equal "NUL char literal" "void f(void) { c = '\\0'; }";
    check_stable "do-while" "void f(void) { do { x = x + 1; } while (x < 4); }";
    check_stable "for without init" "void f(void) { for (; i < 3; i++) x(); }";
    check_stable "for without condition" "void f(void) { for (i = 0; ; i++) { if (i > 2) { break; } } }";
    check_stable "bare for" "void f(void) { for (;;) { break; } }";
    check_stable "switch with fallthrough"
      "void f(void) { switch (x) { case 1: a(); case 2: b(); break; default: c(); } }";
    check_stable "labels and gotos"
      "void f(void) { top: if (x) { goto top; } goto out; out: y = 1; }";
    check_stable "union definition" "union u { int a; long b; };";
    check_stable "typedef pointer" "typedef long *lp;";
    check_stable "global array initialiser-free" "long table[16];";
    check_stable "static global" "static int counter;";
    check_stable "chained assignment" "void f(void) { a = b = c = 0; }";
    check_stable "nested ternary"
      "void f(void) { x = a ? b : c ? d : e; }";
    check_stable "char escapes"
      "void f(void) { c = '\\n'; d = '\\\\'; s = \"a\\tb\"; }";
    check_stable "comma in for-step"
      "void f(void) { for (i = 0; i < 9; i = i + 1, j = j + 2) x(); }";
    check_stable "casts and sizeof"
      "void f(void) { x = (unsigned long)p + sizeof(int) + sizeof(x + 1); }";
    t "pointer return type survives" `Quick (fun () ->
        let tu = Parser.parse_string ~file:"t.c" "long *get(void) { return 0; }" in
        let printed = Pp.tunit_to_string tu in
        let tu2 = Parser.parse_string ~file:"t.c" printed in
        match Ast.functions tu2 with
        | [ f ] ->
          Alcotest.(check bool) "ptr ret" true
            (Ctype.equal f.Ast.f_ret (Ctype.Ptr Ctype.Long))
        | _ -> Alcotest.fail "one function expected");
    t "describe_kind labels nodes" `Quick (fun () ->
        let tu =
          Frontend.of_string ~file:"t.c" "void f(void) { if (x) { y(); } }"
        in
        let cfg = Cfg.build (List.hd (Ast.functions tu)) in
        let kinds =
          Array.to_list cfg.Cfg.nodes
          |> List.map (fun n -> Cfg.describe_kind n.Cfg.kind)
        in
        Alcotest.(check bool) "has entry" true (List.mem "<entry>" kinds);
        Alcotest.(check bool) "has a branch" true
          (List.exists
             (fun k -> String.length k >= 6 && String.sub k 0 6 = "branch")
             kinds));
  ]

(* checker utility helpers *)
let cutil_cases =
  [
    t "count_calls counts once per site" `Quick (fun () ->
        let tu =
          Frontend.of_string ~file:"t.c"
            "void f(void) { if (a) { g(); } while (b) { g(); g(); } }"
        in
        Alcotest.(check int) "three sites" 3 (Cutil.count_calls [ tu ] [ "g" ]));
    t "count_calls sees nested call arguments" `Quick (fun () ->
        let tu =
          Frontend.of_string ~file:"t.c" "void f(void) { g(g(g(1))); }"
        in
        Alcotest.(check int) "three" 3 (Cutil.count_calls [ tu ] [ "g" ]));
    t "refs_handler_global roots correctly" `Quick (fun () ->
        let e =
          Parser.parse_expr_string
            "HANDLER_GLOBALS(dirEntry.vector) + HANDLER_GLOBALS(header.nh.len)"
        in
        Alcotest.(check bool) "dirEntry" true
          (Cutil.refs_handler_global e ~root:"dirEntry");
        Alcotest.(check bool) "header" true
          (Cutil.refs_handler_global e ~root:"header");
        Alcotest.(check bool) "other" false
          (Cutil.refs_handler_global e ~root:"protoStats"));
    t "send_wait_flag extracts the 4th argument" `Quick (fun () ->
        let e =
          Parser.parse_expr_string "PI_SEND(F_NODATA, 0, 0, W_WAIT, 1, 0)"
        in
        Alcotest.(check (option string)) "wait" (Some "W_WAIT")
          (Cutil.send_wait_flag e);
        let e2 = Parser.parse_expr_string "NI_SEND(MSG_PUT, F_DATA, 0, W_NOWAIT, 1, 0)" in
        Alcotest.(check (option string)) "nowait" (Some "W_NOWAIT")
          (Cutil.send_wait_flag e2));
    t "ni_opcode reads the first argument" `Quick (fun () ->
        let e =
          Parser.parse_expr_string "NI_SEND(MSG_INVAL, F_NODATA, 0, W_NOWAIT, 1, 0)"
        in
        Alcotest.(check (option string)) "opcode" (Some "MSG_INVAL")
          (Cutil.ni_opcode e);
        let e2 = Parser.parse_expr_string "PI_SEND(F_DATA, 0, 0, 0, 1, 0)" in
        Alcotest.(check (option string)) "not NI" None (Cutil.ni_opcode e2));
  ]

let suite = ("pp + cutil", printer_cases @ cutil_cases)
