(** Smaller units: locations, diagnostics, call graphs, suppression,
    metrics, tables, and the experiment drivers. *)

let t = Alcotest.test_case

let loc_cases =
  [
    t "compare orders by file, line, col" `Quick (fun () ->
        let mk f l c = Loc.make ~file:f ~line:l ~col:c in
        Alcotest.(check bool) "file first" true
          (Loc.compare (mk "a.c" 9 9) (mk "b.c" 1 1) < 0);
        Alcotest.(check bool) "then line" true
          (Loc.compare (mk "a.c" 1 9) (mk "a.c" 2 1) < 0);
        Alcotest.(check bool) "then col" true
          (Loc.compare (mk "a.c" 1 1) (mk "a.c" 1 2) < 0);
        Alcotest.(check bool) "equal" true
          (Loc.equal (mk "a.c" 1 1) (mk "a.c" 1 1)));
    t "none prints specially" `Quick (fun () ->
        Alcotest.(check string) "none" "<no location>"
          (Loc.to_string Loc.none));
  ]

let diag_cases =
  [
    t "normalize sorts and dedups" `Quick (fun () ->
        let mk line msg =
          Diag.make ~checker:"c"
            ~loc:(Loc.make ~file:"f.c" ~line ~col:1)
            ~func:"g" msg
        in
        let ds = [ mk 5 "b"; mk 1 "a"; mk 5 "b"; mk 3 "c" ] in
        let out = Diag.normalize ds in
        Alcotest.(check int) "deduped" 3 (List.length out);
        Alcotest.(check (list int)) "sorted"
          [ 1; 3; 5 ]
          (List.map (fun d -> d.Diag.loc.Loc.line) out));
    t "severity partitions" `Quick (fun () ->
        let e =
          Diag.make ~checker:"c" ~loc:Loc.none ~func:"f" "err"
        in
        let w =
          Diag.make ~severity:Diag.Warning ~checker:"c" ~loc:Loc.none
            ~func:"f" "warn"
        in
        Alcotest.(check int) "errors" 1 (List.length (Diag.errors [ e; w ]));
        Alcotest.(check int) "warnings" 1
          (List.length (Diag.warnings [ e; w ])));
  ]

let callgraph_cases =
  [
    t "call sites in order" `Quick (fun () ->
        let tu =
          Frontend.of_string ~file:"t.c"
            "void a(void); void b(void);\n\
             void f(void) { a(); if (x) { b(); } a(); }"
        in
        let cg = Callgraph.build [ tu ] in
        Alcotest.(check (list string)) "sites" [ "a"; "b"; "a" ]
          (List.map (fun s -> s.Callgraph.cs_callee) (Callgraph.callees cg "f")));
    t "callers are reverse edges" `Quick (fun () ->
        let tu =
          Frontend.of_string ~file:"t.c"
            "void shared(void) { }\n\
             void f(void) { shared(); }\n\
             void g(void) { shared(); }"
        in
        let cg = Callgraph.build [ tu ] in
        Alcotest.(check (list string)) "callers" [ "f"; "g" ]
          (List.sort compare (Callgraph.callers cg "shared")));
    t "reachability is transitive" `Quick (fun () ->
        let tu =
          Frontend.of_string ~file:"t.c"
            "void c(void) { }\nvoid b(void) { c(); }\nvoid a(void) { b(); }\n\
             void unrelated(void) { }"
        in
        let cg = Callgraph.build [ tu ] in
        Alcotest.(check (list string)) "reach" [ "a"; "b"; "c" ]
          (Callgraph.reachable_from cg [ "a" ]));
    t "recursive functions detected" `Quick (fun () ->
        let tu =
          Frontend.of_string ~file:"t.c"
            "void even(void); void odd(void) { even(); }\n\
             void even(void) { odd(); }\nvoid leaf(void) { }"
        in
        let cg = Callgraph.build [ tu ] in
        let rec_fns = Callgraph.recursive_functions cg in
        Alcotest.(check bool) "odd recursive" true (List.mem "odd" rec_fns);
        Alcotest.(check bool) "leaf not" false (List.mem "leaf" rec_fns));
  ]

let suppress_cases =
  [
    t "used vs unused annotations" `Quick (fun () ->
        let s = Suppress.create ~reserved:[ "has_buffer" ] in
        let a = Suppress.record s ~name:"has_buffer" ~loc:Loc.none ~func:"f" in
        let _b = Suppress.record s ~name:"has_buffer" ~loc:Loc.none ~func:"g" in
        Suppress.mark_used a;
        Alcotest.(check int) "useful" 1 (List.length (Suppress.useful s));
        Alcotest.(check int) "unused" 1 (List.length (Suppress.unused s));
        Alcotest.(check int) "unused diag" 1
          (List.length (Suppress.unused_diags s ~checker:"c")));
  ]

let table_cases =
  [
    t "table renders aligned columns" `Quick (fun () ->
        let rendered =
          Table.render
            (Table.make ~title:"T" ~header:[ "name"; "n" ]
               [ [ "a"; "1" ]; [ "long-name"; "20" ] ])
        in
        Alcotest.(check bool) "has title" true
          (String.length rendered > 0
          && String.sub rendered 0 1 = "T");
        (* every line has the same width for the name column *)
        let lines = String.split_on_char '\n' rendered in
        Alcotest.(check bool) "several lines" true (List.length lines >= 4));
    t "experiment tables produce a row per protocol" `Slow (fun () ->
        let corpus = Corpus.generate () in
        let t1 = Experiments.table1 corpus in
        Alcotest.(check int) "6 rows" 6 (List.length t1.Table.rows);
        let t7 = Experiments.table7 corpus in
        Alcotest.(check int) "9 checkers + total" 10
          (List.length t7.Table.rows));
  ]

let metrics_cases =
  [
    t "LOC counts non-blank lines" `Quick (fun () ->
        Alcotest.(check int) "count" 3
          (Frontend.loc_count "a\n\n  b\n\nc\n"));
    t "measure aggregates functions" `Quick (fun () ->
        let src = "void f(void) { a = 1; }\nvoid g(void) { if (x) { b = 2; } }" in
        let tu = Frontend.of_string ~file:"m.c" src in
        let m = Metrics.measure ~name:"m" ~sources:[ src ] ~tus:[ tu ] in
        Alcotest.(check int) "paths" 3 m.Metrics.n_paths;
        Alcotest.(check bool) "loc positive" true (m.Metrics.loc > 0));
  ]

let rng_cases =
  [
    t "rng is deterministic per seed" `Quick (fun () ->
        let a = Rng.create ~seed:7 in
        let b = Rng.create ~seed:7 in
        let xs = List.init 20 (fun _ -> Rng.int a 1000) in
        let ys = List.init 20 (fun _ -> Rng.int b 1000) in
        Alcotest.(check (list int)) "equal streams" xs ys);
    t "range respects bounds" `Quick (fun () ->
        let rng = Rng.create ~seed:1 in
        for _ = 1 to 200 do
          let v = Rng.range rng 3 9 in
          if v < 3 || v > 9 then Alcotest.fail "out of range"
        done);
    t "split decorrelates streams" `Quick (fun () ->
        let a = Rng.create ~seed:7 in
        let c = Rng.split a "x" in
        let d = Rng.split a "y" in
        let xs = List.init 10 (fun _ -> Rng.int c 1_000_000) in
        let ys = List.init 10 (fun _ -> Rng.int d 1_000_000) in
        Alcotest.(check bool) "different" false (xs = ys));
  ]

let suite =
  ( "misc",
    loc_cases @ diag_cases @ callgraph_cases @ suppress_cases @ table_cases
    @ metrics_cases @ rng_cases )
